//! The API's application logic: routing plus measurement execution.
//!
//! Service state is sharded for the read path: a `RwLock` registry maps
//! measurement ids to `Arc`'d entries, each with its own `RwLock`, so
//! GET endpoints for different measurements never contend with each
//! other — and never block behind a running campaign, which executes
//! entirely outside any lock. The credit ledger and the id counter live
//! behind their own small locks; no request ever holds a global one.
//!
//! Stats are cached per entry, keyed by a results *epoch* that bumps
//! whenever a measurement's samples change (e.g. the durable-resume
//! path replacing them with a longer recovered run): repeated
//! `GET /stats` for an unchanged measurement is an O(1) lookup and
//! never rebuilds the analysis frame ([`AtlasService::frame_builds`]
//! counts rebuilds, pinning that in tests).
//!
//! Since the columnar refactor each entry also retains its analysis
//! frame. Samples live in a columnar [`ResultStore`], and a durable
//! resume that *strictly extends* them (the recovered copy starts with
//! the rows already in memory) feeds [`CampaignFrame::append`] — O(new
//! samples) — instead of a cold full rebuild. Only a replace or shrink
//! bumps the *generation* that invalidates the retained frame; the
//! extend ⇒ append, replace ⇒ rebuild split is pinned by the
//! [`AtlasService::frame_appends`] counter.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use shears_analysis::CampaignFrame;
use shears_atlas::journal::{frame, get_samples_wire, put_samples_wire, put_string, ByteReader, read_frame};
use shears_atlas::{CreditLedger, Platform, ResultStore, RetryPolicy, RttSample};
use shears_netsim::fault::{FaultConfig, FaultPlan};
use shears_netsim::ping::{PingConfig, PingProber};
use shears_netsim::TracerouteProber;
use shears_netsim::queue::DiurnalLoad;
use shears_netsim::stochastic::SimRng;
use shears_netsim::SimTime;

use crate::dto::{
    CreateMeasurementDto, CreateTracerouteDto, HopDto, MeasurementDto, MeasurementStatsDto,
    ProbeDto, RegionDto, ResultDto, ResumeReportDto, TracerouteDto,
};
use crate::http::{Method, Request, Response};
use crate::server::ServerMetrics;
use crate::work::{self, WorkQueue};

/// Service-enforced caps on on-demand measurements (an HTTP request
/// must stay interactive; campaigns run offline).
const MAX_ROUNDS: u32 = 20;
const MAX_PROBES: usize = 200;
/// Cap on per-round retries (each retry multiplies the upfront charge).
const MAX_RETRIES: u32 = 5;
/// Initial credit grant for API users.
const INITIAL_CREDITS: u64 = 1_000_000;

/// File magics for the durability directory: persisted measurements and
/// the service ledger/id state. Both reuse the campaign journal's
/// framed + CRC'd binary wire format — no JSON on the recovery path.
const MEASUREMENT_MAGIC: &[u8; 8] = b"SHRSMEA1";
const STATE_MAGIC: &[u8; 8] = b"SHRSSVC1";

struct StoredMeasurement {
    target_region: usize,
    probes: usize,
    credits_spent: u64,
    credits_refunded: u64,
    fault_profile: Option<String>,
    retried_rounds: usize,
    store: ResultStore,
    /// Bumps whenever the samples change at all (in-memory only, never
    /// persisted): the stats-cache key.
    epoch: u64,
    /// Bumps only when the samples change in a way that is *not* a
    /// strict extension (replace / shrink): the retained-frame key. An
    /// extension keeps the generation, so the stats path appends to the
    /// retained frame instead of rebuilding it.
    generation: u64,
}

/// The analysis frame an entry retains across stats computations,
/// tagged with the sample generation it indexes.
struct FrameCache {
    generation: u64,
    frame: CampaignFrame,
}

/// One measurement behind its own lock. Readers of different
/// measurements touch different entries and never contend.
struct MeasurementEntry {
    data: RwLock<StoredMeasurement>,
    /// `(epoch, stats)` for the most recent computation; serves
    /// repeated stats GETs without touching the analysis frame until
    /// the measurement changes. Lock order: `data` before the caches,
    /// `stats_cache` before `frame_cache`.
    stats_cache: Mutex<Option<(u64, MeasurementStatsDto)>>,
    /// The retained frame. Same-generation stores only ever gain rows,
    /// so a stale frame here is caught up with `append`; a generation
    /// mismatch forces a rebuild.
    frame_cache: Mutex<Option<FrameCache>>,
}

impl MeasurementEntry {
    fn new(m: StoredMeasurement) -> Arc<Self> {
        Arc::new(Self {
            data: RwLock::new(m),
            stats_cache: Mutex::new(None),
            frame_cache: Mutex::new(None),
        })
    }
}

/// The Atlas-style API service over a platform.
pub struct AtlasService {
    platform: Platform,
    /// The registry lock is held only to look up / insert / remove
    /// `Arc` handles — never across campaign work or disk IO on the
    /// request path.
    measurements: RwLock<HashMap<u64, Arc<MeasurementEntry>>>,
    ledger: Mutex<CreditLedger>,
    next_id: AtomicU64,
    /// `CampaignFrame::build` calls made by the stats path; see
    /// [`AtlasService::frame_builds`].
    frame_builds: AtomicU64,
    /// `CampaignFrame::append` calls made by the stats path; see
    /// [`AtlasService::frame_appends`].
    frame_appends: AtomicU64,
    seed: u64,
    durability: Option<PathBuf>,
    /// Serve `/api/v2/__debug/*` (sleep, panic). Off by default; the
    /// connection-level test battery switches it on to occupy or crash
    /// handlers on demand from outside the crate.
    debug_routes: bool,
    /// The distributed-campaign shard queue, when this service fronts a
    /// coordinator (`/api/v2/work/*` routes 404 without one).
    work: Option<Arc<WorkQueue>>,
    /// The hosting server's connection counters, attached at spawn so
    /// `GET /api/v2/metrics` can export them next to service and work
    /// counters.
    server_metrics: std::sync::OnceLock<Arc<ServerMetrics>>,
}

impl AtlasService {
    /// Wraps a platform.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            measurements: RwLock::new(HashMap::new()),
            ledger: Mutex::new(CreditLedger::new(INITIAL_CREDITS)),
            next_id: AtomicU64::new(1),
            frame_builds: AtomicU64::new(0),
            frame_appends: AtomicU64::new(0),
            seed: 0xA71_A50A1,
            durability: None,
            debug_routes: false,
            work: None,
            server_metrics: std::sync::OnceLock::new(),
        }
    }

    /// Attaches a coordinator work queue: the `/api/v2/work/*` routes
    /// dispatch shards from (and submit frames to) it.
    pub fn with_work_queue(mut self, queue: Arc<WorkQueue>) -> Self {
        self.work = Some(queue);
        self
    }

    /// The attached work queue, if any.
    pub fn work_queue(&self) -> Option<&Arc<WorkQueue>> {
        self.work.as_ref()
    }

    /// Called by the server at spawn so the metrics endpoint can see
    /// connection counters. First attachment wins (a service serves one
    /// server).
    pub fn attach_server_metrics(&self, metrics: Arc<ServerMetrics>) {
        let _ = self.server_metrics.set(metrics);
    }

    /// Enables the `/api/v2/__debug/*` routes: `GET
    /// /api/v2/__debug/sleep?ms=N` holds a handler for `N` ms (clamped
    /// to 5000), `GET /api/v2/__debug/panic` panics inside the
    /// handler, and `GET /api/v2/__debug/blob?bytes=N` answers `N`
    /// bytes (clamped to 32 MiB) of payload. Test instrumentation —
    /// never enable on a real deployment.
    pub fn with_debug_routes(mut self) -> Self {
        self.debug_routes = true;
        self
    }

    /// Wraps a platform with persistent measurement state: measurements
    /// and the credit ledger are written to `dir` as they are created,
    /// and `POST /api/v2/measurements/resume` (or
    /// [`AtlasService::resume_from_disk`]) reloads them after a restart.
    pub fn with_durability(platform: Platform, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut svc = Self::new(platform);
        svc.durability = Some(dir);
        Ok(svc)
    }

    /// The wrapped platform (read-only).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Remaining credits.
    pub fn credits(&self) -> u64 {
        self.ledger.lock().balance()
    }

    /// How many times the stats path has rebuilt an analysis frame.
    /// Repeated `GET /stats` for an unchanged measurement must leave
    /// this flat — the epoch-keyed cache short-circuits them; it only
    /// moves when a measurement is first summarised or gains samples.
    pub fn frame_builds(&self) -> u64 {
        self.frame_builds.load(Ordering::Relaxed)
    }

    /// How many times the stats path has *appended* to a retained frame
    /// instead of rebuilding it. A durable resume that strictly extends
    /// a measurement's samples must move this counter, not
    /// [`AtlasService::frame_builds`] — N appended rounds cost one
    /// build plus N appends, never a rebuild.
    pub fn frame_appends(&self) -> u64 {
        self.frame_appends.load(Ordering::Relaxed)
    }

    /// The entry for `id`, if any. The registry lock is released before
    /// returning; the `Arc` keeps the entry alive for the caller.
    fn entry(&self, id: u64) -> Option<Arc<MeasurementEntry>> {
        self.measurements.read().get(&id).cloned()
    }

    /// Routes a request to a handler. Never panics: unknown routes get
    /// 404, wrong methods 405, bad bodies 400.
    pub fn handle(&self, req: &Request) -> Response {
        let segments = req.segments();
        match (req.method, segments.as_slice()) {
            (Method::Get, ["api", "v2", "probes"]) => self.list_probes(req),
            (Method::Get, ["api", "v2", "probes", id]) => self.get_probe(id),
            (Method::Get, ["api", "v2", "regions"]) => self.list_regions(),
            (Method::Get, ["api", "v2", "measurements"]) => self.list_measurements(),
            (Method::Post, ["api", "v2", "measurements"]) => self.create_measurement(req),
            (Method::Post, ["api", "v2", "measurements", "resume"]) => self.resume_measurements(),
            (Method::Post, ["api", "v2", "traceroutes"]) => self.run_traceroutes(req),
            (Method::Get, ["api", "v2", "measurements", id]) => self.get_measurement(id),
            (Method::Get, ["api", "v2", "measurements", id, "results"]) => {
                self.get_results(id)
            }
            (Method::Get, ["api", "v2", "measurements", id, "stats"]) => {
                self.get_stats(id)
            }
            (Method::Delete, ["api", "v2", "measurements", id]) => {
                self.delete_measurement(id)
            }
            (Method::Get, ["api", "v2", "credits"]) => Response::json(&serde_json::json!({
                "balance": self.credits(),
            })),
            (Method::Get, ["api", "v2", "metrics"]) => self.get_metrics(),
            (Method::Post, ["api", "v2", "work", "register"]) => self.work_register(req),
            (Method::Post, ["api", "v2", "work", "poll"]) => self.work_poll(req, false),
            (Method::Post, ["api", "v2", "work", "heartbeat"]) => self.work_poll(req, true),
            (Method::Post, ["api", "v2", "work", "frame"]) => self.work_frame(req),
            // Test-only: a handler that panics on demand, so server
            // tests can prove a panicking request cannot shrink the
            // worker pool. Compiled out of release builds entirely.
            #[cfg(test)]
            (Method::Get, ["api", "v2", "__panic"]) => panic!("injected handler panic"),
            // Opt-in instrumentation for the connection-level battery
            // (integration tests cannot see `cfg(test)` routes): hold a
            // handler busy, or crash it, on demand.
            (Method::Get, ["api", "v2", "__debug", "sleep"]) if self.debug_routes => {
                let ms: u64 = req
                    .query
                    .get("ms")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(100);
                std::thread::sleep(std::time::Duration::from_millis(ms.min(5_000)));
                Response::json(&serde_json::json!({ "slept_ms": ms.min(5_000) }))
            }
            (Method::Get, ["api", "v2", "__debug", "panic"]) if self.debug_routes => {
                panic!("injected debug-route panic")
            }
            // A response big enough to overrun any kernel socket
            // buffering — the write-deadline battery needs the server
            // to genuinely stall in `WritingResponse` against a slow
            // reader.
            (Method::Get, ["api", "v2", "__debug", "blob"]) if self.debug_routes => {
                let bytes: usize = req
                    .query
                    .get("bytes")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1 << 20);
                Response::octets(vec![b'x'; bytes.min(1 << 25)])
            }
            (_, ["api", "v2", ..]) => Response::error(405, "method not allowed"),
            _ => Response::error(404, "no such resource"),
        }
    }

    fn list_probes(&self, req: &Request) -> Response {
        let country = req.query.get("country");
        let tag = req.query.get("tag");
        let limit: usize = req
            .query
            .get("limit")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        let offset: usize = req
            .query
            .get("offset")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let dtos: Vec<ProbeDto> = self
            .platform
            .probes()
            .iter()
            .filter(|p| country.is_none_or(|c| &p.country == c))
            .filter(|p| tag.is_none_or(|t| p.tags.iter().any(|pt| pt == t)))
            .skip(offset)
            .take(limit.min(1000))
            .map(ProbeDto::from)
            .collect();
        Response::json(&dtos)
    }

    fn get_probe(&self, id: &str) -> Response {
        let Ok(idx) = id.parse::<usize>() else {
            return Response::error(400, "probe id must be an integer");
        };
        match self.platform.probes().get(idx) {
            Some(p) => Response::json(&ProbeDto::from(p)),
            None => Response::error(404, "no such probe"),
        }
    }

    fn list_regions(&self) -> Response {
        let dtos: Vec<RegionDto> = self
            .platform
            .catalog()
            .regions()
            .iter()
            .enumerate()
            .map(|(i, r)| RegionDto::new(i, r))
            .collect();
        Response::json(&dtos)
    }

    /// `GET /api/v2/measurements`: every live measurement, id-ascending.
    fn list_measurements(&self) -> Response {
        let mut entries: Vec<(u64, Arc<MeasurementEntry>)> = self
            .measurements
            .read()
            .iter()
            .map(|(&id, e)| (id, Arc::clone(e)))
            .collect();
        entries.sort_by_key(|(id, _)| *id);
        let dtos: Vec<MeasurementDto> = entries
            .iter()
            .map(|(id, e)| self.measurement_dto(*id, &e.data.read()))
            .collect();
        Response::json(&dtos)
    }

    fn create_measurement(&self, req: &Request) -> Response {
        let spec: CreateMeasurementDto = match serde_json::from_slice(&req.body) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &format!("invalid body: {e}")),
        };
        self.create_from_spec(&spec)
    }

    /// The create path after body parsing: validate, charge, run the
    /// campaign (lock-free), store. Public so tests and the load
    /// harness can seed measurements without going through the JSON
    /// surface (which the offline serde stub cannot round-trip).
    pub fn create_from_spec(&self, spec: &CreateMeasurementDto) -> Response {
        if spec.target_region >= self.platform.catalog().regions().len() {
            return Response::error(400, "unknown target region");
        }
        if spec.packets == 0 || spec.packets > 16 {
            return Response::error(400, "packets must be 1..=16");
        }
        let rounds = spec.rounds.clamp(1, MAX_ROUNDS);
        let probe_limit = spec.probe_limit.clamp(1, MAX_PROBES);
        let faults = match spec.fault_profile.as_deref() {
            None => FaultConfig::none(),
            Some(name) => match FaultConfig::profile(name) {
                Some(cfg) => cfg,
                None => return Response::error(400, &format!("unknown fault profile '{name}'")),
            },
        };
        let retries = spec.retries.unwrap_or(0).min(MAX_RETRIES);
        let policy = if retries == 0 {
            RetryPolicy::none()
        } else {
            RetryPolicy {
                max_retries: retries,
                ..RetryPolicy::atlas_default()
            }
        };

        // Probe selection: unprivileged, optional country filter.
        let probes: Vec<_> = self
            .platform
            .unprivileged_probes()
            .filter(|p| spec.country.as_ref().is_none_or(|c| &p.country == c))
            .take(probe_limit)
            .collect();
        if probes.is_empty() {
            return Response::error(400, "no matching probes");
        }

        // Charge up front for the worst case (every attempt fired);
        // rounds that fail after the last retry are refunded below.
        let cost = CreditLedger::ping_cost(spec.packets)
            * probes.len() as u64
            * u64::from(rounds)
            * u64::from(retries + 1);
        if let Err(e) = self.ledger.lock().debit(cost) {
            return Response::error(400, &e.to_string());
        }

        // The fault plan is regenerated from the service seed, so equal
        // requests observe equal fault schedules. The campaign below
        // runs without any service lock held: concurrent GETs proceed.
        let horizon = SimTime::from_hours(u64::from(rounds) + 1);
        let plan = faults
            .enabled
            .then(|| FaultPlan::generate(self.platform.topology(), &faults, self.seed, horizon));
        let mut prober = match &plan {
            Some(plan) => PingProber::with_faults(self.platform.topology(), plan),
            None => PingProber::new(self.platform.topology()),
        };
        let master = SimRng::new(self.seed);
        let cfg = PingConfig {
            packets: spec.packets,
            ..PingConfig::default()
        };
        let round_cost = CreditLedger::ping_cost(spec.packets);
        let mut store = ResultStore::with_capacity(probes.len() * rounds as usize);
        let mut retried_rounds = 0usize;
        let mut refund = 0u64;
        for round in 0..rounds {
            let at = SimTime::from_hours(u64::from(round));
            for probe in &probes {
                let mut rng = master.fork_keyed(u64::from(probe.id.0), u64::from(round));
                let mut schedule = policy.schedule(at);
                let mut attempts = 0u32;
                let mut best = None;
                let succeeded = loop {
                    attempts += 1;
                    let outcome = prober.ping(
                        self.platform.probe_node(probe.id),
                        self.platform.dc_node(spec.target_region),
                        Some(probe.access),
                        DiurnalLoad::residential(),
                        schedule.attempt_at(),
                        &cfg,
                        &mut rng,
                    );
                    let ok = outcome.as_ref().is_some_and(|o| o.received > 0);
                    if ok || best.is_none() {
                        best = outcome;
                    }
                    if ok {
                        break true;
                    }
                    if !schedule.next(&policy, &mut rng) {
                        break false;
                    }
                };
                if attempts > 1 {
                    retried_rounds += 1;
                }
                if !succeeded && policy.refund_failures {
                    refund += round_cost.saturating_mul(u64::from(attempts));
                }
                let Some(outcome) = best else {
                    continue;
                };
                store.push(RttSample {
                    probe: probe.id,
                    region: spec.target_region as u16,
                    at,
                    min_ms: outcome.min_ms().map_or(f32::INFINITY, |v| v as f32),
                    avg_ms: outcome.avg_ms().map_or(f32::INFINITY, |v| v as f32),
                    sent: (outcome.sent.saturating_mul(attempts)).min(255) as u8,
                    received: outcome.received.min(255) as u8,
                });
            }
        }

        let refunded = self.ledger.lock().refund(refund);
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let stored = StoredMeasurement {
            target_region: spec.target_region,
            probes: probes.len(),
            credits_spent: cost,
            credits_refunded: refunded,
            fault_profile: spec.fault_profile.clone(),
            retried_rounds,
            store,
            epoch: 0,
            generation: 0,
        };
        let dto = self.measurement_dto(id, &stored);
        if spec.durability {
            if let Err(e) = self.persist_measurement(id, &stored) {
                // The measurement is discarded, so the client must not
                // pay for it: return the net charge (upfront cost minus
                // what the failure policy already refunded).
                self.ledger.lock().refund(cost.saturating_sub(refunded));
                return Response::error(500, &format!("measurement not persisted: {e}"));
            }
        }
        self.measurements
            .write()
            .insert(id, MeasurementEntry::new(stored));
        if let Err(e) = self.persist_state() {
            // The measurement is inserted and live, and its own WAL (if
            // requested) is already durable — a failed ledger snapshot
            // must not turn a successful create into an error response.
            // The snapshot is retried on the next create/flush.
            eprintln!("warning: service state snapshot not persisted: {e}");
        }
        Response::json_with_status(201, &dto)
    }

    // --- Durability: persistent measurement state -----------------------

    fn measurement_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("measurement-{id:08}.wal"))
    }

    /// Writes one measurement to the durability directory (no-op
    /// without one). Temp-file + rename, so a crash mid-write can never
    /// leave a half measurement behind.
    fn persist_measurement(&self, id: u64, m: &StoredMeasurement) -> std::io::Result<()> {
        let Some(dir) = &self.durability else {
            return Ok(());
        };
        let mut payload = Vec::with_capacity(64 + m.store.len() * 24);
        payload.push(1u8); // schema version
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&(m.target_region as u64).to_le_bytes());
        payload.extend_from_slice(&(m.probes as u64).to_le_bytes());
        payload.extend_from_slice(&m.credits_spent.to_le_bytes());
        payload.extend_from_slice(&m.credits_refunded.to_le_bytes());
        payload.extend_from_slice(&(m.retried_rounds as u64).to_le_bytes());
        match &m.fault_profile {
            Some(name) => {
                payload.push(1);
                put_string(&mut payload, name);
            }
            None => payload.push(0),
        }
        put_samples_wire(&mut payload, &m.store);
        let mut bytes = MEASUREMENT_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(&payload));
        let path = Self::measurement_path(dir, id);
        let tmp = path.with_extension("wal.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)
    }

    fn load_measurement(bytes: &[u8]) -> Option<(u64, StoredMeasurement)> {
        let body = bytes.strip_prefix(MEASUREMENT_MAGIC.as_slice())?;
        let (payload, _) = read_frame(body, 0).ok()??;
        let mut r = ByteReader::new(payload);
        if r.u8().ok()? != 1 {
            return None;
        }
        let id = r.u64().ok()?;
        let target_region = r.u64().ok()? as usize;
        let probes = r.u64().ok()? as usize;
        let credits_spent = r.u64().ok()?;
        let credits_refunded = r.u64().ok()?;
        let retried_rounds = r.u64().ok()? as usize;
        let fault_profile = if r.u8().ok()? != 0 {
            Some(r.string().ok()?)
        } else {
            None
        };
        let store = get_samples_wire(&mut r).ok()?;
        Some((
            id,
            StoredMeasurement {
                target_region,
                probes,
                credits_spent,
                credits_refunded,
                fault_profile,
                retried_rounds,
                store,
                epoch: 0,
                generation: 0,
            },
        ))
    }

    /// Writes the ledger + id-counter snapshot (no-op without a
    /// durability directory).
    fn persist_state(&self) -> std::io::Result<()> {
        let Some(dir) = &self.durability else {
            return Ok(());
        };
        let (balance, spent, refunded) = {
            let ledger = self.ledger.lock();
            (ledger.balance(), ledger.spent(), ledger.refunded())
        };
        let mut payload = Vec::with_capacity(40);
        payload.push(1u8);
        payload.extend_from_slice(&self.next_id.load(Ordering::SeqCst).to_le_bytes());
        payload.extend_from_slice(&balance.to_le_bytes());
        payload.extend_from_slice(&spent.to_le_bytes());
        payload.extend_from_slice(&refunded.to_le_bytes());
        let mut bytes = STATE_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(&payload));
        let path = dir.join("service.state");
        let tmp = path.with_extension("state.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)
    }

    fn load_state(bytes: &[u8]) -> Option<(u64, CreditLedger)> {
        let body = bytes.strip_prefix(STATE_MAGIC.as_slice())?;
        let (payload, _) = read_frame(body, 0).ok()??;
        let mut r = ByteReader::new(payload);
        if r.u8().ok()? != 1 {
            return None;
        }
        let next_id = r.u64().ok()?;
        let ledger = CreditLedger::restore(r.u64().ok()?, r.u64().ok()?, r.u64().ok()?);
        Some((next_id, ledger))
    }

    /// Reloads persisted measurements and ledger state from the
    /// durability directory. A measurement already in memory is kept
    /// as-is unless the durable copy has strictly more samples (it
    /// gained rounds elsewhere) — then the samples are replaced and the
    /// stats epoch bumps, so cached stats can never go stale. A durable
    /// copy that *strictly extends* the in-memory rows keeps the frame
    /// generation, so the next stats computation appends to the
    /// retained frame; a divergent copy bumps it into a rebuild. Files
    /// that fail their checksum or decode are skipped, not fatal.
    /// Returns `(recovered, skipped)`.
    pub fn resume_from_disk(&self) -> std::io::Result<(usize, usize)> {
        let Some(dir) = self.durability.clone() else {
            return Ok((0, 0));
        };
        let mut recovered = 0usize;
        let mut skipped = 0usize;
        let state_path = dir.join("service.state");
        if state_path.exists() {
            match Self::load_state(&std::fs::read(&state_path)?) {
                Some((next_id, ledger)) => {
                    self.next_id.fetch_max(next_id, Ordering::SeqCst);
                    *self.ledger.lock() = ledger;
                }
                None => skipped += 1,
            }
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("measurement-") && n.ends_with(".wal"))
            })
            .collect();
        entries.sort();
        for path in entries {
            match Self::load_measurement(&std::fs::read(&path)?) {
                Some((id, m)) => {
                    self.next_id.fetch_max(id + 1, Ordering::SeqCst);
                    match self.measurements.write().entry(id) {
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(MeasurementEntry::new(m));
                            recovered += 1;
                        }
                        std::collections::hash_map::Entry::Occupied(slot) => {
                            let mut data = slot.get().data.write();
                            if m.store.len() > data.store.len() {
                                let extends = data.store.is_prefix_of(&m.store);
                                let epoch = data.epoch + 1;
                                let generation =
                                    data.generation + u64::from(!extends);
                                *data = m;
                                data.epoch = epoch;
                                data.generation = generation;
                                recovered += 1;
                            }
                        }
                    }
                }
                None => skipped += 1,
            }
        }
        Ok((recovered, skipped))
    }

    fn resume_measurements(&self) -> Response {
        if self.durability.is_none() {
            return Response::error(400, "service has no durability directory");
        }
        match self.resume_from_disk() {
            Ok((recovered, skipped)) => Response::json(&ResumeReportDto {
                recovered,
                skipped,
                total: self.measurements.read().len(),
                credits_balance: self.credits(),
            }),
            Err(e) => Response::error(500, &format!("resume failed: {e}")),
        }
    }

    /// Flushes all in-memory state to the durability directory (no-op
    /// without one). Called by the server's graceful shutdown; also
    /// safe to call at any time.
    pub fn flush(&self) -> std::io::Result<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let entries: Vec<(u64, Arc<MeasurementEntry>)> = self
            .measurements
            .read()
            .iter()
            .map(|(&id, e)| (id, Arc::clone(e)))
            .collect();
        for (id, e) in entries {
            self.persist_measurement(id, &e.data.read())?;
        }
        self.persist_state()
    }

    fn run_traceroutes(&self, req: &Request) -> Response {
        let spec: CreateTracerouteDto = match serde_json::from_slice(&req.body) {
            Ok(s) => s,
            Err(e) => return Response::error(400, &format!("invalid body: {e}")),
        };
        if spec.target_region >= self.platform.catalog().regions().len() {
            return Response::error(400, "unknown target region");
        }
        let probes: Vec<_> = self
            .platform
            .unprivileged_probes()
            .filter(|p| spec.country.as_ref().is_none_or(|c| &p.country == c))
            .take(spec.probe_limit.clamp(1, 50))
            .collect();
        if probes.is_empty() {
            return Response::error(400, "no matching probes");
        }
        let mut prober = TracerouteProber::new(self.platform.topology());
        let master = SimRng::new(self.seed ^ 0x7ace);
        let mut out = Vec::with_capacity(probes.len());
        for probe in probes {
            let mut rng = master.fork_keyed(u64::from(probe.id.0), 0);
            let Some(trace) = prober.trace(
                self.platform.probe_node(probe.id),
                self.platform.dc_node(spec.target_region),
                Some(probe.access),
                DiurnalLoad::residential(),
                SimTime::from_hours(1),
                &mut rng,
            ) else {
                continue;
            };
            out.push(TracerouteDto {
                probe_id: probe.id.0,
                reached: trace.reached,
                hops: trace
                    .hops
                    .iter()
                    .map(|h| HopDto {
                        ttl: h.ttl,
                        kind: format!("{:?}", h.kind),
                        rtt_ms: h.rtt_ms,
                    })
                    .collect(),
            });
        }
        Response::json(&out)
    }

    fn measurement_dto(&self, id: u64, m: &StoredMeasurement) -> MeasurementDto {
        MeasurementDto {
            id,
            target_region: m.target_region,
            target_label: self.platform.region(m.target_region).label(),
            probes: m.probes,
            results: m.store.len(),
            credits_spent: m.credits_spent,
            credits_refunded: m.credits_refunded,
            fault_profile: m.fault_profile.clone(),
        }
    }

    fn get_measurement(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "measurement id must be an integer");
        };
        match self.entry(id) {
            Some(e) => Response::json(&self.measurement_dto(id, &e.data.read())),
            None => Response::error(404, "no such measurement"),
        }
    }

    fn delete_measurement(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "measurement id must be an integer");
        };
        match self.measurements.write().remove(&id) {
            Some(_) => Response::status(204),
            None => Response::error(404, "no such measurement"),
        }
    }

    /// Aggregate statistics over one measurement's samples, computed
    /// through the analysis frame (privileged-probe mask, per-probe and
    /// per-country minima) instead of ad-hoc loops — the same indexed
    /// path the figure pipeline uses. Cached per entry and keyed by the
    /// results epoch; on a miss the entry's retained frame is appended
    /// to (same generation) or rebuilt (new generation), never rebuilt
    /// for a mere extension.
    fn get_stats(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "measurement id must be an integer");
        };
        let Some(entry) = self.entry(id) else {
            return Response::error(404, "no such measurement");
        };
        let data = entry.data.read();
        let mut cache = entry.stats_cache.lock();
        if let Some((epoch, dto)) = &*cache {
            if *epoch == data.epoch {
                return Response::json(dto);
            }
        }
        let dto = self.compute_stats(id, &entry, &data);
        let resp = Response::json(&dto);
        *cache = Some((data.epoch, dto));
        resp
    }

    /// Computes stats through the entry's retained frame, syncing it to
    /// the current samples first: same generation ⇒ the store only
    /// gained rows since the frame indexed it, so `append` catches up
    /// in O(new samples); generation mismatch (replace/shrink) or no
    /// frame yet ⇒ full build.
    fn compute_stats(
        &self,
        id: u64,
        entry: &MeasurementEntry,
        m: &StoredMeasurement,
    ) -> MeasurementStatsDto {
        let mut slot = entry.frame_cache.lock();
        let reusable = matches!(&*slot, Some(fc) if fc.generation == m.generation);
        if reusable {
            let fc = slot.as_mut().expect("checked above");
            if fc.frame.rows_indexed() < m.store.len() {
                self.frame_appends.fetch_add(1, Ordering::Relaxed);
                fc.frame.append(&m.store);
            }
        } else {
            self.frame_builds.fetch_add(1, Ordering::Relaxed);
            *slot = Some(FrameCache {
                generation: m.generation,
                frame: CampaignFrame::build(&self.platform, &m.store),
            });
        }
        let frame = &slot.as_ref().expect("synced above").frame;
        let rate = m.store.response_rate();
        let fastest_probe = frame
            .probe_minima()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let fastest_country = frame
            .country_minima()
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(b.0)));
        MeasurementStatsDto {
            id,
            samples: m.store.len(),
            responded: m.store.responded_len(),
            response_rate: rate.is_finite().then_some(rate),
            probes_with_data: frame.probe_minima().count(),
            countries_measured: frame.countries_measured(),
            fastest_probe_id: fastest_probe.map(|(p, _)| p.0),
            fastest_probe_min_ms: fastest_probe.map(|(_, v)| v),
            fastest_country: fastest_country.map(|(c, _)| c.to_string()),
            fastest_country_min_ms: fastest_country.map(|(_, v)| v),
            fault_profile: m.fault_profile.clone(),
            retried_rounds: m.retried_rounds,
            credits_refunded: m.credits_refunded,
        }
    }

    // --- Metrics + distributed work dispatch ----------------------------

    /// `GET /api/v2/metrics`: every counter the deployment watches, in
    /// one JSON object with a fixed key order. The body is hand-built
    /// byte-identically to what serde_json would emit (keys are plain
    /// identifiers, values are integers), pinned by a unit test — so it
    /// works under the offline serde stub too.
    fn get_metrics(&self) -> Response {
        fn push_counters(buf: &mut Vec<u8>, fields: &[(&str, u64)]) {
            buf.push(b'{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    buf.push(b',');
                }
                buf.push(b'"');
                buf.extend_from_slice(k.as_bytes());
                buf.extend_from_slice(b"\":");
                buf.extend_from_slice(v.to_string().as_bytes());
            }
            buf.push(b'}');
        }
        let mut body = Vec::with_capacity(512);
        body.extend_from_slice(b"{\"server\":");
        match self.server_metrics.get() {
            Some(m) => {
                let s = m.snapshot();
                push_counters(
                    &mut body,
                    &[
                        ("connections_accepted", s.connections_accepted),
                        ("connections_open", s.connections_open),
                        ("requests", s.requests),
                        ("responses_503", s.responses_503),
                        ("responses_400", s.responses_400),
                        ("handler_panics", s.handler_panics),
                        ("idle_closed", s.idle_closed),
                        ("write_deadline_closed", s.write_deadline_closed),
                        ("threads_live", s.threads_live),
                    ],
                );
            }
            None => body.extend_from_slice(b"null"),
        }
        body.extend_from_slice(b",\"service\":");
        push_counters(
            &mut body,
            &[
                ("frame_builds", self.frame_builds()),
                ("frame_appends", self.frame_appends()),
                ("credits", self.credits()),
            ],
        );
        body.extend_from_slice(b",\"work\":");
        match &self.work {
            Some(q) => {
                let m = q.metrics();
                push_counters(
                    &mut body,
                    &[
                        ("workers_live", m.workers_live),
                        ("workers_registered", m.workers_registered),
                        ("heartbeats_missed", m.heartbeats_missed),
                        ("shards_reassigned", m.shards_reassigned),
                        ("rounds_retried", m.rounds_retried),
                        ("duplicate_frames_dropped", m.duplicate_frames_dropped),
                        ("frames_accepted", m.frames_accepted),
                        ("frames_rejected", m.frames_rejected),
                        ("lost_rounds", m.lost_rounds),
                        ("streams_opened", m.streams_opened),
                        ("stream_reconnects", m.stream_reconnects),
                        ("frames_in_flight", m.frames_in_flight),
                        ("frames_in_flight_peak", m.frames_in_flight_peak),
                        ("replies_pushed", m.replies_pushed),
                        ("verdicts_le_1ms", m.verdicts_le_1ms),
                        ("verdicts_le_10ms", m.verdicts_le_10ms),
                        ("verdicts_le_100ms", m.verdicts_le_100ms),
                        ("verdicts_gt_100ms", m.verdicts_gt_100ms),
                    ],
                );
            }
            None => body.extend_from_slice(b"null"),
        }
        body.push(b'}');
        let mut r = Response::status(200);
        r.headers
            .insert("content-type".into(), "application/json".into());
        r.body = body;
        r
    }

    /// `POST /api/v2/work/register`: admit a worker incarnation and
    /// ship it the campaign header.
    fn work_register(&self, req: &Request) -> Response {
        let Some(q) = &self.work else {
            return Response::error(404, "no work queue attached");
        };
        match work::decode_hello(&req.body) {
            Ok(v) if v == work::WORK_PROTO_VERSION => {
                let id = q.register(std::time::Instant::now());
                Response::octets(work::encode_welcome(
                    id,
                    q.spec().heartbeat_interval.as_millis() as u64,
                    &q.spec().header_wire,
                ))
            }
            Ok(v) => Response::error(400, &format!("unsupported work protocol {v}")),
            Err(e) => Response::error(400, e),
        }
    }

    /// `POST /api/v2/work/{poll,heartbeat}`: liveness refresh; poll
    /// additionally acquires a free shard.
    fn work_poll(&self, req: &Request, heartbeat_only: bool) -> Response {
        let Some(q) = &self.work else {
            return Response::error(404, "no work queue attached");
        };
        match work::decode_poll(&req.body) {
            Ok(worker) => {
                let now = std::time::Instant::now();
                let reply = if heartbeat_only {
                    q.heartbeat(worker, now)
                } else {
                    q.poll(worker, now)
                };
                Response::octets(work::encode_reply(&reply))
            }
            Err(e) => Response::error(400, e),
        }
    }

    /// `POST /api/v2/work/frame`: one completed round in, verdict out.
    fn work_frame(&self, req: &Request) -> Response {
        let Some(q) = &self.work else {
            return Response::error(404, "no work queue attached");
        };
        match work::decode_frame_submit(&req.body) {
            Ok(sub) => {
                let arrived = std::time::Instant::now();
                let (verdict, current) = q.submit(sub, arrived);
                // The blocking transport's verdict turns around inside
                // one request; bucket it so the histogram covers both
                // wire shapes.
                q.note_verdict_latency(arrived.elapsed());
                Response::octets(work::encode_verdict(verdict, current))
            }
            Err(e) => Response::error(400, e),
        }
    }

    fn get_results(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "measurement id must be an integer");
        };
        match self.entry(id) {
            Some(e) => {
                let data = e.data.read();
                let dtos: Vec<ResultDto> =
                    data.store.iter().map(|s| ResultDto::from(&s)).collect();
                Response::json(&dtos)
            }
            None => Response::error(404, "no such measurement"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Headers, Method, Request};
    use shears_atlas::PlatformConfig;
    use std::collections::BTreeMap;

    fn service() -> AtlasService {
        AtlasService::new(Platform::build(&PlatformConfig::quick(2)))
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: Method::Get,
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Headers::default(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            path: path.to_string(),
            query: BTreeMap::new(),
            headers: Headers::default(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Seeds a measurement through [`AtlasService::create_from_spec`],
    /// bypassing the JSON surface so cache/lock tests also run under
    /// the offline serde stub (whose deserialiser always errors).
    fn seed(svc: &AtlasService, region: usize, rounds: u32, probe_limit: usize) {
        let resp = svc.create_from_spec(&CreateMeasurementDto {
            target_region: region,
            packets: 3,
            rounds,
            probe_limit,
            country: None,
            fault_profile: None,
            retries: None,
            durability: true,
        });
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn lists_probes_with_filters() {
        let svc = service();
        let resp = svc.handle(&get("/api/v2/probes", &[("country", "DE"), ("limit", "5")]));
        assert_eq!(resp.status, 200);
        let dtos: Vec<ProbeDto> = serde_json::from_slice(&resp.body).unwrap();
        assert!(!dtos.is_empty() && dtos.len() <= 5);
        assert!(dtos.iter().all(|p| p.country_code == "DE"));
    }

    #[test]
    fn probe_lookup_errors() {
        let svc = service();
        assert_eq!(svc.handle(&get("/api/v2/probes/abc", &[])).status, 400);
        assert_eq!(svc.handle(&get("/api/v2/probes/999999", &[])).status, 404);
        assert_eq!(svc.handle(&get("/api/v2/probes/0", &[])).status, 200);
    }

    #[test]
    fn regions_endpoint_serves_catalogue() {
        let svc = service();
        let resp = svc.handle(&get("/api/v2/regions", &[]));
        let dtos: Vec<RegionDto> = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(dtos.len(), 101);
    }

    #[test]
    fn measurement_lifecycle() {
        let svc = service();
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "rounds": 2, "probe_limit": 10}"#,
        ));
        assert_eq!(create.status, 201, "{:?}", String::from_utf8_lossy(&create.body));
        let m: MeasurementDto = serde_json::from_slice(&create.body).unwrap();
        assert_eq!(m.target_region, 9);
        assert!(m.results > 0);
        assert!(m.credits_spent > 0);

        let fetch = svc.handle(&get(&format!("/api/v2/measurements/{}", m.id), &[]));
        assert_eq!(fetch.status, 200);

        let results = svc.handle(&get(
            &format!("/api/v2/measurements/{}/results", m.id),
            &[],
        ));
        assert_eq!(results.status, 200);
        let rows: Vec<ResultDto> = serde_json::from_slice(&results.body).unwrap();
        assert_eq!(rows.len(), m.results);
        assert!(rows.iter().any(|r| r.min_ms.is_some()));
    }

    #[test]
    fn measurements_list_is_id_sorted() {
        let svc = service();
        for region in [3usize, 1, 7] {
            seed(&svc, region, 1, 4);
        }
        let resp = svc.handle(&get("/api/v2/measurements", &[]));
        assert_eq!(resp.status, 200);
        // Under the offline serde stub the body is empty; the listing
        // order is pinned wherever a real serde_json is linked.
        if let Ok(dtos) = serde_json::from_slice::<Vec<MeasurementDto>>(&resp.body) {
            let ids: Vec<u64> = dtos.iter().map(|d| d.id).collect();
            assert_eq!(ids, vec![1, 2, 3]);
        }
        assert_eq!(svc.measurements.read().len(), 3);
    }

    #[test]
    fn create_measurement_validation() {
        let svc = service();
        assert_eq!(
            svc.handle(&post("/api/v2/measurements", "not json")).status,
            400
        );
        assert_eq!(
            svc.handle(&post("/api/v2/measurements", r#"{"target_region": 9999}"#))
                .status,
            400
        );
        assert_eq!(
            svc.handle(&post(
                "/api/v2/measurements",
                r#"{"target_region": 1, "packets": 0}"#
            ))
            .status,
            400
        );
        assert_eq!(
            svc.handle(&post(
                "/api/v2/measurements",
                r#"{"target_region": 1, "country": "XX"}"#
            ))
            .status,
            400,
            "no probes in a non-country"
        );
    }

    #[test]
    fn traceroute_endpoint_returns_hops() {
        let svc = service();
        let resp = svc.handle(&post(
            "/api/v2/traceroutes",
            r#"{"target_region": 9, "probe_limit": 3, "country": "DE"}"#,
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let traces: Vec<crate::dto::TracerouteDto> =
            serde_json::from_slice(&resp.body).unwrap();
        assert!(!traces.is_empty());
        for t in &traces {
            assert!(t.reached);
            assert!(t.hops.len() >= 3, "{} hops", t.hops.len());
            assert_eq!(t.hops[0].kind, "AccessRouter");
            assert!(t.hops.last().unwrap().kind == "Datacenter");
        }
        // Validation paths.
        assert_eq!(
            svc.handle(&post("/api/v2/traceroutes", r#"{"target_region": 9999}"#))
                .status,
            400
        );
        assert_eq!(
            svc.handle(&post("/api/v2/traceroutes", "junk")).status,
            400
        );
    }

    #[test]
    fn stats_endpoint_summarises_a_measurement() {
        let svc = service();
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "rounds": 3, "probe_limit": 20}"#,
        ));
        assert_eq!(create.status, 201);
        let m: MeasurementDto = serde_json::from_slice(&create.body).unwrap();

        let resp = svc.handle(&get(&format!("/api/v2/measurements/{}/stats", m.id), &[]));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let stats: MeasurementStatsDto = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(stats.id, m.id);
        assert_eq!(stats.samples, m.results);
        assert!(stats.responded <= stats.samples);
        let rate = stats.response_rate.expect("non-empty measurement");
        assert!((0.0..=1.0).contains(&rate));
        assert!(stats.probes_with_data > 0);
        assert!(stats.countries_measured > 0);
        // The fastest probe/country pair is internally consistent.
        let probe_min = stats.fastest_probe_min_ms.unwrap();
        let country_min = stats.fastest_country_min_ms.unwrap();
        assert!(probe_min > 0.0);
        assert_eq!(country_min, probe_min, "best country is the best probe's");
        assert!(stats.fastest_probe_id.is_some());
        assert!(stats.fastest_country.is_some());

        // Error paths.
        assert_eq!(
            svc.handle(&get("/api/v2/measurements/abc/stats", &[])).status,
            400
        );
        assert_eq!(
            svc.handle(&get("/api/v2/measurements/999/stats", &[])).status,
            404
        );
    }

    #[test]
    fn repeated_stats_gets_build_the_frame_once() {
        let svc = service();
        seed(&svc, 9, 2, 10);
        seed(&svc, 3, 1, 5);
        assert_eq!(svc.frame_builds(), 0, "creation must not build frames");

        let first = svc.handle(&get("/api/v2/measurements/1/stats", &[]));
        assert_eq!(first.status, 200);
        assert_eq!(svc.frame_builds(), 1);
        for _ in 0..5 {
            let again = svc.handle(&get("/api/v2/measurements/1/stats", &[]));
            assert_eq!(again.status, 200);
            assert_eq!(again.body, first.body, "cached stats must be identical");
        }
        assert_eq!(svc.frame_builds(), 1, "unchanged measurement: zero rebuilds");

        // A different measurement has its own cache entry.
        assert_eq!(svc.handle(&get("/api/v2/measurements/2/stats", &[])).status, 200);
        assert_eq!(svc.frame_builds(), 2);
        assert_eq!(svc.handle(&get("/api/v2/measurements/2/stats", &[])).status, 200);
        assert_eq!(svc.frame_builds(), 2);
    }

    #[test]
    fn metrics_endpoint_emits_exact_json_bytes() {
        use crate::work::{WorkQueue, WorkSpec};
        use std::time::Instant;

        // Without a server or work queue attached, both slots are null.
        let svc = service();
        let resp = svc.handle(&get("/api/v2/metrics", &[]));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers["content-type"], "application/json");
        assert_eq!(
            resp.body,
            b"{\"server\":null,\"service\":{\"frame_builds\":0,\"frame_appends\":0,\
               \"credits\":1000000},\"work\":null}"
                .to_vec()
        );

        // With both attached, every counter appears in fixed order.
        let svc = service()
            .with_work_queue(Arc::new(WorkQueue::new(WorkSpec::quick(2, 2))));
        svc.attach_server_metrics(Arc::new(ServerMetrics::default()));
        let q = Arc::clone(svc.work_queue().unwrap());
        let t = Instant::now();
        let a = q.register(t);
        let _ = q.register(t);
        q.poll(a, t);
        q.note_stream(false);
        q.note_frames_inflight(3);
        q.release_frames_inflight(3);
        q.note_verdict_latency(std::time::Duration::from_micros(250));
        let resp = svc.handle(&get("/api/v2/metrics", &[]));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            body,
            "{\"server\":{\"connections_accepted\":0,\"connections_open\":0,\
             \"requests\":0,\"responses_503\":0,\"responses_400\":0,\
             \"handler_panics\":0,\"idle_closed\":0,\"write_deadline_closed\":0,\
             \"threads_live\":0},\"service\":{\"frame_builds\":0,\
             \"frame_appends\":0,\"credits\":1000000},\"work\":{\
             \"workers_live\":2,\"workers_registered\":2,\"heartbeats_missed\":0,\
             \"shards_reassigned\":0,\"rounds_retried\":0,\
             \"duplicate_frames_dropped\":0,\"frames_accepted\":0,\
             \"frames_rejected\":0,\"lost_rounds\":0,\"streams_opened\":1,\
             \"stream_reconnects\":0,\"frames_in_flight\":0,\
             \"frames_in_flight_peak\":3,\"replies_pushed\":0,\
             \"verdicts_le_1ms\":1,\"verdicts_le_10ms\":0,\
             \"verdicts_le_100ms\":0,\"verdicts_gt_100ms\":0}}"
        );
        // Where a real serde_json is linked, the hand-built bytes agree
        // with the library encoding of the same structure.
        if let Ok(via_serde) = serde_json::to_vec(&serde_json::json!({
            "server": {
                "connections_accepted": 0, "connections_open": 0,
                "requests": 0, "responses_503": 0, "responses_400": 0,
                "handler_panics": 0, "idle_closed": 0,
                "write_deadline_closed": 0, "threads_live": 0
            },
            "service": {"frame_builds": 0, "frame_appends": 0, "credits": 1_000_000},
            "work": {
                "workers_live": 2, "workers_registered": 2,
                "heartbeats_missed": 0, "shards_reassigned": 0,
                "rounds_retried": 0, "duplicate_frames_dropped": 0,
                "frames_accepted": 0, "frames_rejected": 0, "lost_rounds": 0,
                "streams_opened": 1, "stream_reconnects": 0,
                "frames_in_flight": 0, "frames_in_flight_peak": 3,
                "replies_pushed": 0, "verdicts_le_1ms": 1,
                "verdicts_le_10ms": 0, "verdicts_le_100ms": 0,
                "verdicts_gt_100ms": 0
            }
        })) {
            if !via_serde.is_empty() {
                assert_eq!(String::from_utf8(via_serde).unwrap(), body);
            }
        }
    }

    #[test]
    fn work_routes_dispatch_shards_over_the_wire_codec() {
        use crate::work::{self, WorkQueue, WorkReply, WorkSpec};

        // Routes 404 without a queue.
        let svc = service();
        assert_eq!(
            svc.handle(&post("/api/v2/work/register", "")).status,
            404
        );

        let svc = service()
            .with_work_queue(Arc::new(WorkQueue::new(WorkSpec::quick(1, 1))));
        let raw = |body: Vec<u8>, path: &str| Request {
            method: Method::Post,
            path: path.to_string(),
            query: BTreeMap::new(),
            headers: Headers::default(),
            body,
        };
        let resp = svc.handle(&raw(work::encode_hello(), "/api/v2/work/register"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers["content-type"], "application/octet-stream");
        let (worker, interval_ms, _header) = work::decode_welcome(&resp.body).unwrap();
        assert!(interval_ms > 0);

        let resp = svc.handle(&raw(work::encode_poll(worker), "/api/v2/work/poll"));
        let reply = work::decode_reply(&resp.body).unwrap();
        assert!(matches!(reply, WorkReply::Assigned(a) if a.shard == 0 && a.rounds == 1));

        // Garbage bodies are a 400, never a panic or a hang.
        assert_eq!(svc.handle(&raw(vec![1, 2, 3], "/api/v2/work/frame")).status, 400);
        assert_eq!(svc.handle(&raw(Vec::new(), "/api/v2/work/poll")).status, 400);
    }

    #[test]
    fn credits_are_debited() {
        let svc = service();
        let before = svc.credits();
        svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 0, "probe_limit": 5}"#,
        ));
        let after = svc.credits();
        assert_eq!(before - after, 5 * 3);
    }

    #[test]
    fn measurements_can_be_deleted() {
        let svc = service();
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 2, "probe_limit": 4}"#,
        ));
        let m: MeasurementDto = serde_json::from_slice(&create.body).unwrap();
        let del = Request {
            method: Method::Delete,
            path: format!("/api/v2/measurements/{}", m.id),
            query: BTreeMap::new(),
            headers: Headers::default(),
            body: Vec::new(),
        };
        assert_eq!(svc.handle(&del).status, 204);
        // Gone: results now 404, double delete 404.
        assert_eq!(
            svc.handle(&get(&format!("/api/v2/measurements/{}/results", m.id), &[]))
                .status,
            404
        );
        assert_eq!(svc.handle(&del).status, 404);
    }

    #[test]
    fn unknown_fault_profile_is_rejected() {
        let svc = service();
        let resp = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "fault_profile": "meteor-strike"}"#,
        ));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("meteor-strike"));
    }

    #[test]
    fn faulty_measurements_expose_degradation_stats() {
        let svc = service();
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "rounds": 4, "probe_limit": 20,
                "fault_profile": "chaos", "retries": 2}"#,
        ));
        assert_eq!(create.status, 201, "{}", String::from_utf8_lossy(&create.body));
        let m: MeasurementDto = serde_json::from_slice(&create.body).unwrap();
        assert_eq!(m.fault_profile.as_deref(), Some("chaos"));

        let resp = svc.handle(&get(&format!("/api/v2/measurements/{}/stats", m.id), &[]));
        assert_eq!(resp.status, 200);
        let stats: MeasurementStatsDto = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(stats.fault_profile.as_deref(), Some("chaos"));
        // A refund implies at least one round exhausted its retries.
        if stats.credits_refunded > 0 {
            assert!(stats.retried_rounds > 0);
        }
        // Refunds never exceed what the measurement was charged.
        assert!(m.credits_refunded <= m.credits_spent);
    }

    #[test]
    fn fault_free_requests_are_unchanged_by_the_fault_machinery() {
        // The same request with and without the recovery/fault fields
        // spelled out as their defaults returns identical samples.
        let svc = service();
        let a = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "rounds": 2, "probe_limit": 10}"#,
        ));
        let b = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "rounds": 2, "probe_limit": 10,
                "fault_profile": null, "retries": 0}"#,
        ));
        let ma: MeasurementDto = serde_json::from_slice(&a.body).unwrap();
        let mb: MeasurementDto = serde_json::from_slice(&b.body).unwrap();
        assert_eq!(ma.results, mb.results);
        assert_eq!(ma.credits_spent, mb.credits_spent);
        assert_eq!(ma.credits_refunded, 0);
        let ra = svc.handle(&get(&format!("/api/v2/measurements/{}/results", ma.id), &[]));
        let rb = svc.handle(&get(&format!("/api/v2/measurements/{}/results", mb.id), &[]));
        assert_eq!(ra.body, rb.body, "identical requests, identical rows");
    }

    #[test]
    fn retries_multiply_the_upfront_charge_and_refund_failures() {
        let svc = service();
        let before = svc.credits();
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 0, "probe_limit": 5, "retries": 1,
                "fault_profile": "blackout"}"#,
        ));
        assert_eq!(create.status, 201);
        let m: MeasurementDto = serde_json::from_slice(&create.body).unwrap();
        // 5 probes × 1 round × (1+1 attempts) × 3 credits charged up front.
        assert_eq!(m.credits_spent, 5 * 2 * 3);
        assert_eq!(before - svc.credits(), m.credits_spent - m.credits_refunded);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "shears-api-durability-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn durable_measurements_survive_a_service_restart() {
        let dir = temp_dir("restart");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "rounds": 2, "probe_limit": 10}"#,
        ));
        assert_eq!(create.status, 201, "{}", String::from_utf8_lossy(&create.body));
        let m: MeasurementDto = serde_json::from_slice(&create.body).unwrap();
        let results_before = svc
            .handle(&get(&format!("/api/v2/measurements/{}/results", m.id), &[]))
            .body;
        let balance_before = svc.credits();
        drop(svc); // "crash"

        // A fresh service over the same directory knows nothing…
        let svc2 =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        assert_eq!(
            svc2.handle(&get(&format!("/api/v2/measurements/{}", m.id), &[]))
                .status,
            404
        );
        // …until it resumes from disk.
        let resume = svc2.handle(&post("/api/v2/measurements/resume", ""));
        assert_eq!(resume.status, 200, "{}", String::from_utf8_lossy(&resume.body));
        let report: ResumeReportDto = serde_json::from_slice(&resume.body).unwrap();
        assert_eq!(report.recovered, 1);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.total, 1);
        assert_eq!(report.credits_balance, balance_before);
        // Recovered rows are byte-identical, stats still compute, and
        // new measurements do not collide with recovered ids.
        let results_after = svc2
            .handle(&get(&format!("/api/v2/measurements/{}/results", m.id), &[]))
            .body;
        assert_eq!(results_before, results_after);
        assert_eq!(
            svc2.handle(&get(&format!("/api/v2/measurements/{}/stats", m.id), &[]))
                .status,
            200
        );
        let again = svc2.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 3, "probe_limit": 4}"#,
        ));
        let m2: MeasurementDto = serde_json::from_slice(&again.body).unwrap();
        assert!(m2.id > m.id, "recovered id counter must not reissue {}", m.id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Clones an entry's measurement with its store extended by
    /// `extra_rounds` copies of the first sample at fresh hours —
    /// "another process appended rounds and flushed".
    fn extended_copy(svc: &AtlasService, id: u64, extra_rounds: u64) -> StoredMeasurement {
        let data = svc.entry(id).unwrap();
        let data = data.data.read();
        let mut store = data.store.clone();
        let base_hour = 99 + extra_rounds * 10;
        for k in 0..extra_rounds {
            let mut extra = store.get(0);
            extra.at = shears_netsim::SimTime::from_hours(base_hour + k);
            store.push(extra);
        }
        StoredMeasurement {
            target_region: data.target_region,
            probes: data.probes,
            credits_spent: data.credits_spent,
            credits_refunded: data.credits_refunded,
            fault_profile: data.fault_profile.clone(),
            retried_rounds: data.retried_rounds,
            store,
            epoch: 0,
            generation: 0,
        }
    }

    #[test]
    fn stats_cache_invalidates_when_resume_brings_more_samples() {
        // A measurement whose durable copy gained rounds (the PR-4
        // recovery path) must never serve stale cached counts — and
        // since the copy strictly extends the in-memory rows, the stats
        // path appends to the retained frame instead of rebuilding.
        let dir = temp_dir("stale");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        seed(&svc, 9, 2, 10);

        // Warm the cache.
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!(svc.frame_builds(), 1);
        let samples_before = svc.entry(1).unwrap().data.read().store.len();
        assert!(samples_before > 0);

        // Simulate another process appending a round and flushing: the
        // durable copy of measurement 1 now has one extra sample.
        svc.persist_measurement(1, &extended_copy(&svc, 1, 1)).unwrap();

        let (recovered, skipped) = svc.resume_from_disk().unwrap();
        assert_eq!((recovered, skipped), (1, 0), "longer durable copy wins");
        let entry = svc.entry(1).unwrap();
        assert_eq!(entry.data.read().store.len(), samples_before + 1);
        assert_eq!(entry.data.read().epoch, 1, "epoch bumps on sample change");
        assert_eq!(
            entry.data.read().generation,
            0,
            "a strict extension keeps the frame generation"
        );

        // The next stats GET recomputes via append; the one after hits
        // the new cache key.
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!(svc.frame_builds(), 1, "extension must not rebuild the frame");
        assert_eq!(svc.frame_appends(), 1, "extension feeds CampaignFrame::append");
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!((svc.frame_builds(), svc.frame_appends()), (1, 1));
        // Where a real serde_json is linked, the served counts match
        // the recovered store, not the cached pre-resume ones.
        let body = svc.handle(&get("/api/v2/measurements/1/stats", &[])).body;
        if let Ok(stats) = serde_json::from_slice::<MeasurementStatsDto>(&body) {
            assert_eq!(stats.samples, samples_before + 1);
        }

        // Re-resume with identical disk state: idempotent, no resync.
        let (recovered, _) = svc.resume_from_disk().unwrap();
        assert_eq!(recovered, 0, "equal-length durable copy is a no-op");
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!((svc.frame_builds(), svc.frame_appends()), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn n_appended_rounds_cost_one_build_and_n_appends() {
        // The acceptance pin for the incremental stats path: a live
        // measurement gaining N rounds one resume at a time costs
        // exactly 1 frame build + N appends — zero full rebuilds.
        let dir = temp_dir("n-appends");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        seed(&svc, 9, 2, 10);
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!((svc.frame_builds(), svc.frame_appends()), (1, 0));

        const N: u64 = 4;
        for n in 1..=N {
            svc.persist_measurement(1, &extended_copy(&svc, 1, n)).unwrap();
            let (recovered, _) = svc.resume_from_disk().unwrap();
            assert_eq!(recovered, 1, "round {n} recovered");
            assert_eq!(
                svc.handle(&get("/api/v2/measurements/1/stats", &[])).status,
                200
            );
            assert_eq!(
                (svc.frame_builds(), svc.frame_appends()),
                (1, n),
                "after {n} appended rounds"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergent_durable_copy_rebuilds_the_frame() {
        // A durable copy that is longer but does NOT extend the
        // in-memory rows (a replaced history) must invalidate the
        // retained frame: generation bumps, the stats path rebuilds.
        let dir = temp_dir("divergent");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        seed(&svc, 9, 2, 10);
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!((svc.frame_builds(), svc.frame_appends()), (1, 0));

        let mut divergent = extended_copy(&svc, 1, 1);
        // Rewrite the first row so the copy is no longer a prefix
        // extension of what is in memory.
        let mut rewritten = ResultStore::with_capacity(divergent.store.len());
        for (i, s) in divergent.store.iter().enumerate() {
            let mut s = s;
            if i == 0 {
                s.at = shears_netsim::SimTime::from_hours(77);
            }
            rewritten.push(s);
        }
        divergent.store = rewritten;
        svc.persist_measurement(1, &divergent).unwrap();

        let (recovered, _) = svc.resume_from_disk().unwrap();
        assert_eq!(recovered, 1, "longer divergent copy still wins");
        let entry = svc.entry(1).unwrap();
        assert_eq!(entry.data.read().generation, 1, "replace bumps the generation");

        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!(
            (svc.frame_builds(), svc.frame_appends()),
            (2, 0),
            "replace ⇒ rebuild, never append"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_then_resume_rebuilds_a_fresh_entry() {
        // Deleting an entry drops its cache with it; a resume that
        // reloads the durable copy starts from a cold cache.
        let dir = temp_dir("del-resume");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        seed(&svc, 5, 1, 6);
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!(svc.frame_builds(), 1);

        let del = Request {
            method: Method::Delete,
            path: "/api/v2/measurements/1".to_string(),
            query: BTreeMap::new(),
            headers: Headers::default(),
            body: Vec::new(),
        };
        assert_eq!(svc.handle(&del).status, 204);
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 404);

        let (recovered, _) = svc.resume_from_disk().unwrap();
        assert_eq!(recovered, 1, "durable copy restores the deleted entry");
        assert_eq!(svc.handle(&get("/api/v2/measurements/1/stats", &[])).status, 200);
        assert_eq!(svc.frame_builds(), 2, "fresh entry, fresh cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_corrupt_files_and_respects_opt_out() {
        let dir = temp_dir("corrupt");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        // Opted-out measurements leave no file behind.
        let create = svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 9, "probe_limit": 5, "durability": false}"#,
        ));
        assert_eq!(create.status, 201);
        let files = |dir: &std::path::Path| {
            std::fs::read_dir(dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with("measurement-"))
                })
                .count()
        };
        assert_eq!(files(&dir), 0, "durability:false must not persist");
        // A corrupt measurement file is skipped, never fatal or panicky.
        std::fs::write(dir.join("measurement-00000099.wal"), b"SHRSMEA1garbage").unwrap();
        let resume = svc.handle(&post("/api/v2/measurements/resume", ""));
        assert_eq!(resume.status, 200);
        let report: ResumeReportDto = serde_json::from_slice(&resume.body).unwrap();
        assert_eq!(report.recovered, 0);
        assert_eq!(report.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_durability_is_a_client_error() {
        let svc = service();
        let resp = svc.handle(&post("/api/v2/measurements/resume", ""));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn flush_writes_every_measurement() {
        let dir = temp_dir("flush");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        // Create one non-durable measurement, then flush: the graceful
        // shutdown path persists even opted-out state.
        svc.handle(&post(
            "/api/v2/measurements",
            r#"{"target_region": 1, "probe_limit": 3, "durability": false}"#,
        ));
        svc.flush().unwrap();
        let svc2 =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        let (recovered, skipped) = svc2.resume_from_disk().unwrap();
        assert_eq!((recovered, skipped), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_codec_round_trips_without_json() {
        // The durability path is binary end to end; this pins the codec
        // itself (including INFINITY loss markers) independently of the
        // HTTP/JSON surface.
        let dir = temp_dir("codec");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        let lost = RttSample {
            probe: shears_atlas::ProbeId(3),
            region: 9,
            at: shears_netsim::SimTime::from_hours(6),
            min_ms: f32::INFINITY,
            avg_ms: f32::INFINITY,
            sent: 3,
            received: 0,
        };
        let fine = RttSample {
            probe: shears_atlas::ProbeId(4),
            region: 9,
            at: shears_netsim::SimTime::from_hours(9),
            min_ms: 12.25,
            avg_ms: 14.5,
            sent: 3,
            received: 3,
        };
        let mut store = ResultStore::with_capacity(2);
        store.push(lost);
        store.push(fine);
        let m = StoredMeasurement {
            target_region: 9,
            probes: 2,
            credits_spent: 42,
            credits_refunded: 6,
            fault_profile: Some("chaos".to_string()),
            retried_rounds: 1,
            store,
            epoch: 0,
            generation: 0,
        };
        svc.persist_measurement(77, &m).unwrap();
        svc.next_id.store(78, Ordering::SeqCst);
        svc.ledger.lock().debit(42).unwrap();
        svc.persist_state().unwrap();
        drop(svc);

        let svc2 =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        let (recovered, skipped) = svc2.resume_from_disk().unwrap();
        assert_eq!((recovered, skipped), (1, 0));
        assert_eq!(svc2.next_id.load(Ordering::SeqCst), 78);
        assert_eq!(svc2.ledger.lock().spent(), 42);
        let entry = svc2.entry(77).unwrap();
        let got = entry.data.read();
        assert_eq!(got.target_region, 9);
        assert_eq!(got.probes, 2);
        assert_eq!(got.credits_spent, 42);
        assert_eq!(got.credits_refunded, 6);
        assert_eq!(got.fault_profile.as_deref(), Some("chaos"));
        assert_eq!(got.retried_rounds, 1);
        assert_eq!(got.store, m.store);
        assert!(got.store.get(0).min_ms.is_infinite(), "loss marker survives");
        drop(got);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_measurement_persistence_refunds_the_charge() {
        // If the measurement WAL cannot be written the client gets 500
        // and nothing was created — so the upfront debit must be
        // returned, not silently kept.
        let dir = temp_dir("persist-fail");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        let before = svc.credits();
        // Make every write under the durability directory fail.
        std::fs::remove_dir_all(&dir).unwrap();
        let resp = svc.create_from_spec(&CreateMeasurementDto {
            target_region: 9,
            packets: 3,
            rounds: 1,
            probe_limit: 5,
            country: None,
            fault_profile: None,
            retries: None,
            durability: true,
        });
        assert_eq!(resp.status, 500, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(svc.credits(), before, "failed create must not keep the charge");
        assert!(svc.measurements.read().is_empty(), "no half-created measurement");
    }

    #[test]
    fn failed_state_snapshot_does_not_fail_a_live_measurement() {
        // The ledger/id snapshot failing after the measurement is
        // inserted must not turn a successful create into a 500: the
        // client was charged and the measurement serves.
        let dir = temp_dir("state-fail");
        let svc =
            AtlasService::with_durability(Platform::build(&PlatformConfig::quick(2)), &dir)
                .unwrap();
        let before = svc.credits();
        std::fs::remove_dir_all(&dir).unwrap();
        // durability:false skips the per-measurement WAL, so only the
        // state snapshot touches the (now missing) directory.
        let resp = svc.create_from_spec(&CreateMeasurementDto {
            target_region: 9,
            packets: 3,
            rounds: 1,
            probe_limit: 5,
            country: None,
            fault_profile: None,
            retries: None,
            durability: false,
        });
        assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
        assert!(svc.entry(1).is_some(), "measurement is live despite the failed snapshot");
        assert!(svc.credits() < before, "the served measurement stays charged");
    }

    #[test]
    fn concurrent_readers_on_distinct_measurements_share_nothing() {
        // Readers of different measurements cross no common lock after
        // the registry lookup; hammering them concurrently must neither
        // deadlock nor rebuild any frame beyond the first per entry.
        let svc = std::sync::Arc::new(service());
        for region in 0..4usize {
            seed(&svc, region, 1, 5);
        }
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let svc = std::sync::Arc::clone(&svc);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let id = (t + i) % 4 + 1;
                        let stats =
                            svc.handle(&get(&format!("/api/v2/measurements/{id}/stats"), &[]));
                        assert_eq!(stats.status, 200);
                        let one = svc.handle(&get(&format!("/api/v2/measurements/{id}"), &[]));
                        assert_eq!(one.status, 200);
                        let all = svc.handle(&get("/api/v2/measurements", &[]));
                        assert_eq!(all.status, 200);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.frame_builds(), 4, "one frame build per measurement");
    }

    #[test]
    fn unknown_routes_and_methods() {
        let svc = service();
        assert_eq!(svc.handle(&get("/nope", &[])).status, 404);
        assert_eq!(svc.handle(&post("/api/v2/probes", "{}")).status, 405);
    }
}
