//! Minimal HTTP/1.1 message handling.
//!
//! Implements exactly the subset the API needs, correctly: request-line
//! and header parsing with size limits, content-length body framing
//! (no chunked encoding — the client never sends it), percent-decoded
//! query strings, and response serialisation with keep-alive semantics.
//! Everything returns typed errors; a malformed request can never panic
//! the connection thread.
//!
//! The parsing hot path is allocation-lean: header lines are read into
//! a caller-supplied scratch buffer ([`read_request_buffered`]) and
//! only the headers the service acts on are retained ([`Headers`]),
//! compared case-insensitively in place — arbitrary headers cost no
//! per-header `String`s. Responses serialise into a reusable
//! [`BytesMut`] ([`Response::send_buffered`]) so keep-alive connections
//! recycle one write buffer for their whole lifetime.
//!
//! Two parsing front ends share one grammar: the blocking
//! [`read_request_buffered`] (worker-pool path) and the incremental
//! [`RequestParser`] (reactor path), which accepts bytes in arbitrary
//! chunks — a request split at any byte boundary, down to one byte at
//! a time, reaches the same accept/reject verdict as a whole-buffer
//! parse. Both call the same request-line and header-line helpers, so
//! they cannot drift. [`ResponseParser`] is the client-side mirror the
//! open-loop load generator multiplexes over nonblocking sockets.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use bytes::BytesMut;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: u64 = 1024 * 1024;

/// Parse/IO failure while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Connection closed before a full request arrived.
    ConnectionClosed,
    /// The request violated the grammar or a size limit.
    BadRequest(String),
    /// Underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// An HTTP method (the subset the API serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// DELETE.
    Delete,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// The request headers the service acts on, extracted during parsing.
///
/// Every header line is validated for grammar, but only this known set
/// is retained — matched case-insensitively against the raw line, so an
/// arbitrary header costs zero allocations instead of two `String`s.
#[derive(Debug, Clone, Default)]
pub struct Headers {
    /// `Content-Length`, when the client declared one (last wins).
    pub content_length: Option<u64>,
    /// Whether the client sent `Connection: close`.
    pub connection_close: bool,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path without the query string, percent-decoded per segment.
    pub path: String,
    /// Query parameters (last occurrence wins), percent-decoded.
    pub query: BTreeMap<String, String>,
    /// Known request headers (unknown headers are validated, then
    /// skipped).
    pub headers: Headers,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default yes, unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self.headers.connection_close
    }

    /// Path segments (`/api/v2/probes/7` → `["api", "v2", "probes", "7"]`).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Percent-decodes a URL component; invalid escapes pass through
/// verbatim (lenient, like most servers).
///
/// Operates on bytes throughout: a hostile escape like `%` followed by
/// a multi-byte character must pass through, never slice a `str` at a
/// non-boundary and panic.
pub fn percent_decode(s: &str) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                out.push(hi << 4 | lo);
                i += 3;
                continue;
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> BTreeMap<String, String> {
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// The parsed request line: everything before the header section.
#[derive(Debug, Clone)]
struct RequestLine {
    method: Method,
    path: String,
    query: BTreeMap<String, String>,
}

/// Parses a (already line-terminator-trimmed) request line. Shared by
/// the blocking and incremental front ends so their verdicts cannot
/// drift.
fn parse_request_line(request_line: &str) -> Result<RequestLine, HttpError> {
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| HttpError::BadRequest(format!("unsupported method in {request_line:?}")))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version}")));
    }
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = path_raw
        .split('/')
        .map(percent_decode)
        .collect::<Vec<_>>()
        .join("/");
    let query = parse_query(query_raw);
    Ok(RequestLine {
        method,
        path,
        query,
    })
}

/// Parses one (trimmed, non-empty) header line into `headers`. Shared
/// by the blocking and incremental front ends.
fn parse_header_line(hl: &str, headers: &mut Headers) -> Result<(), HttpError> {
    let (k, v) = hl
        .split_once(':')
        .ok_or_else(|| HttpError::BadRequest(format!("malformed header {hl:?}")))?;
    let (k, v) = (k.trim(), v.trim());
    if k.eq_ignore_ascii_case("content-length") {
        let len = v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?;
        headers.content_length = Some(len);
    } else if k.eq_ignore_ascii_case("connection") {
        // `Connection` is a comma-separated token list, and a close
        // request is sticky: a later `keep-alive` (or a repeated
        // header) must not resurrect the connection.
        headers.connection_close |= v
            .split(',')
            .any(|t| t.trim().eq_ignore_ascii_case("close"));
    }
    Ok(())
}

/// Validates the declared body length against the limit.
fn check_body_length(headers: &Headers) -> Result<usize, HttpError> {
    let len = headers.content_length.unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BadRequest(format!("body of {len} bytes too large")));
    }
    Ok(len as usize)
}

/// Reads one request from a buffered stream.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    read_request_buffered(reader, &mut String::new())
}

/// Reads one request, reusing `line` as the head-line scratch buffer —
/// a keep-alive connection passes the same buffer for every request and
/// allocates no per-line `String`s after the first.
pub fn read_request_buffered<R: BufRead>(
    reader: &mut R,
    line: &mut String,
) -> Result<Request, HttpError> {
    // Request line.
    line.clear();
    let n = reader.read_line(line)?;
    if n == 0 {
        return Err(HttpError::ConnectionClosed);
    }
    if line.len() > MAX_HEAD_BYTES {
        // A request line alone can't exceed the head budget (it used to
        // be counted only once a header line followed, letting a
        // never-ending first line buffer without bound).
        return Err(HttpError::BadRequest("header section too large".into()));
    }
    let rl = parse_request_line(line.trim_end())?;

    // Headers: grammar-checked line by line, known names matched in
    // place. The request line's borrows are materialised above, so the
    // scratch buffer can be recycled here.
    let mut headers = Headers::default();
    let mut head_bytes = line.len();
    loop {
        line.clear();
        let n = reader.read_line(line)?;
        if n == 0 {
            return Err(HttpError::ConnectionClosed);
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("header section too large".into()));
        }
        let hl = line.trim_end();
        if hl.is_empty() {
            break;
        }
        parse_header_line(hl, &mut headers)?;
    }

    // Body.
    let len = check_body_length(&headers)?;
    let mut body = vec![0u8; len];
    if !body.is_empty() {
        std::io::Read::read_exact(reader, &mut body)?;
    }
    Ok(Request {
        method: rl.method,
        path: rl.path,
        query: rl.query,
        headers,
        body,
    })
}

/// Incremental request parser for the reactor's nonblocking read path.
///
/// Bytes arrive in arbitrary chunks via [`RequestParser::feed`];
/// [`RequestParser::poll`] makes as much progress as the buffered bytes
/// allow and returns a complete [`Request`] once one is available.
/// Verdicts (accept, reject class, parsed fields) are identical to the
/// blocking [`read_request`] path for any byte-chunk partition of the
/// same input — pinned by unit tests here and property tests in
/// `tests/proptests.rs`.
///
/// Pipelined requests are supported: bytes past the first complete
/// request stay buffered for the next `poll` cycle.
#[derive(Debug, Default)]
pub struct RequestParser {
    /// Unconsumed bytes. Consumed prefixes are drained whenever a
    /// request completes, so pipelined successors shift to the front.
    buf: Vec<u8>,
    /// Parse cursor into `buf` (bytes before it belong to the request
    /// currently being assembled).
    pos: usize,
    state: ParseState,
}

#[derive(Debug, Default)]
enum ParseState {
    /// Waiting for the request line.
    #[default]
    RequestLine,
    /// Request line parsed; reading header lines.
    Headers {
        rl: Box<RequestLine>,
        headers: Headers,
        head_bytes: usize,
    },
    /// Head complete; waiting for `need` body bytes.
    Body {
        rl: Box<RequestLine>,
        headers: Headers,
        need: usize,
    },
}

/// One `read_line`-equivalent step over a byte buffer: a line is
/// everything up to and including the next `\n`, or (only at EOF) the
/// whole remainder. Returns the line's byte range, or `None` when more
/// bytes are needed.
fn take_line(buf: &[u8], pos: usize, eof: bool) -> Option<std::ops::Range<usize>> {
    match buf[pos..].iter().position(|&b| b == b'\n') {
        Some(i) => Some(pos..pos + i + 1),
        None if eof && pos < buf.len() => Some(pos..buf.len()),
        None => None,
    }
}

impl RequestParser {
    /// A fresh parser with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the parser holds no partial request at all — the
    /// connection is *idle*, not mid-request (the reactor's idle
    /// timeout applies to this state; a mid-request stall is a slow
    /// client, judged by the same clock but reported differently).
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && matches!(self.state, ParseState::RequestLine)
    }

    /// Decodes a line range as UTF-8, mirroring `read_line`'s
    /// `InvalidData` error on non-UTF-8 bytes.
    fn line_str<'a>(buf: &'a [u8], range: std::ops::Range<usize>) -> Result<&'a str, HttpError> {
        std::str::from_utf8(&buf[range]).map_err(|_| {
            HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stream did not contain valid UTF-8",
            ))
        })
    }

    /// Drives the parse as far as the buffered bytes allow.
    ///
    /// * `Ok(Some(request))` — a complete request; trailing (pipelined)
    ///   bytes stay buffered.
    /// * `Ok(None)` — need more bytes (or, at `eof` with an empty
    ///   buffer, the connection ended cleanly between requests — that
    ///   case returns `Err(ConnectionClosed)` to match the blocking
    ///   path).
    /// * `Err(_)` — same error classes as [`read_request`]: the
    ///   connection should answer 400 (BadRequest) or just close.
    ///
    /// `eof` says the peer half-closed: buffered bytes are final.
    pub fn poll(&mut self, eof: bool) -> Result<Option<Request>, HttpError> {
        loop {
            match &mut self.state {
                ParseState::RequestLine => {
                    let Some(range) = take_line(&self.buf, self.pos, eof) else {
                        if eof && self.pos >= self.buf.len() {
                            return Err(HttpError::ConnectionClosed);
                        }
                        // Unterminated request line: the head budget
                        // still applies (the blocking path errors as
                        // soon as the line completes over budget; a
                        // line that can no longer complete under
                        // budget is rejected here without waiting).
                        if self.buf.len() - self.pos > MAX_HEAD_BYTES {
                            return Err(HttpError::BadRequest(
                                "header section too large".into(),
                            ));
                        }
                        return Ok(None);
                    };
                    if range.len() > MAX_HEAD_BYTES {
                        return Err(HttpError::BadRequest("header section too large".into()));
                    }
                    let line = Self::line_str(&self.buf, range.clone())?;
                    let rl = parse_request_line(line.trim_end())?;
                    let head_bytes = range.len();
                    self.pos = range.end;
                    self.state = ParseState::Headers {
                        rl: Box::new(rl),
                        headers: Headers::default(),
                        head_bytes,
                    };
                }
                ParseState::Headers {
                    rl,
                    headers,
                    head_bytes,
                } => {
                    let Some(range) = take_line(&self.buf, self.pos, eof) else {
                        if eof {
                            // Peer closed mid-head: blocking read_line
                            // returns 0 here.
                            return Err(HttpError::ConnectionClosed);
                        }
                        if *head_bytes + (self.buf.len() - self.pos) > MAX_HEAD_BYTES {
                            return Err(HttpError::BadRequest(
                                "header section too large".into(),
                            ));
                        }
                        return Ok(None);
                    };
                    *head_bytes += range.len();
                    if *head_bytes > MAX_HEAD_BYTES {
                        return Err(HttpError::BadRequest("header section too large".into()));
                    }
                    let line = Self::line_str(&self.buf, range.clone())?;
                    let hl = line.trim_end();
                    if hl.is_empty() {
                        let need = check_body_length(headers)?;
                        let rl = std::mem::take(rl);
                        let headers = std::mem::take(headers);
                        self.pos = range.end;
                        self.state = ParseState::Body { rl, headers, need };
                    } else {
                        parse_header_line(hl, headers)?;
                        self.pos = range.end;
                    }
                }
                ParseState::Body { rl, headers, need } => {
                    let have = self.buf.len() - self.pos;
                    if have < *need {
                        if eof {
                            // Mirrors read_exact on a truncated stream.
                            return Err(HttpError::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "failed to fill whole buffer",
                            )));
                        }
                        return Ok(None);
                    }
                    let body = self.buf[self.pos..self.pos + *need].to_vec();
                    let req = Request {
                        method: rl.method,
                        path: std::mem::take(&mut rl.path),
                        query: std::mem::take(&mut rl.query),
                        headers: std::mem::take(headers),
                        body,
                    };
                    // Drop everything consumed; pipelined bytes shift
                    // to the front for the next request.
                    let consumed = self.pos + *need;
                    self.buf.drain(..consumed);
                    self.pos = 0;
                    self.state = ParseState::RequestLine;
                    return Ok(Some(req));
                }
            }
        }
    }
}

impl Default for RequestLine {
    fn default() -> Self {
        RequestLine {
            method: Method::Get,
            path: String::new(),
            query: BTreeMap::new(),
        }
    }
}

/// Incremental response parser: the client-side mirror of
/// [`RequestParser`], used by the open-loop load generator to multiplex
/// many nonblocking sessions on a few threads. Parses
/// `status line → headers → content-length body`; our server always
/// declares `content-length`, so a response without one is a protocol
/// error here.
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
    pos: usize,
    state: RespState,
}

#[derive(Debug, Default, Clone, Copy)]
enum RespState {
    #[default]
    StatusLine,
    Headers {
        status: u16,
        content_length: Option<usize>,
    },
    Body {
        status: u16,
        need: usize,
    },
}

impl ResponseParser {
    /// A fresh parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether no partial response is buffered.
    pub fn is_idle(&self) -> bool {
        self.buf.is_empty() && matches!(self.state, RespState::StatusLine)
    }

    /// Drives the parse; `Ok(Some((status, body)))` when one response
    /// completed (pipelined successors stay buffered), `Ok(None)` when
    /// more bytes are needed.
    pub fn poll(&mut self) -> Result<Option<(u16, Vec<u8>)>, HttpError> {
        loop {
            match self.state {
                RespState::StatusLine => {
                    let Some(range) = take_line(&self.buf, self.pos, false) else {
                        if self.buf.len() - self.pos > MAX_HEAD_BYTES {
                            return Err(HttpError::BadRequest("status line too large".into()));
                        }
                        return Ok(None);
                    };
                    let line = RequestParser::line_str(&self.buf, range.clone())?;
                    let status: u16 = line
                        .split_whitespace()
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| {
                            HttpError::BadRequest(format!("bad status line {line:?}"))
                        })?;
                    self.pos = range.end;
                    self.state = RespState::Headers {
                        status,
                        content_length: None,
                    };
                }
                RespState::Headers {
                    status,
                    content_length,
                } => {
                    let Some(range) = take_line(&self.buf, self.pos, false) else {
                        if self.buf.len() - self.pos > MAX_HEAD_BYTES {
                            return Err(HttpError::BadRequest("header section too large".into()));
                        }
                        return Ok(None);
                    };
                    let line = RequestParser::line_str(&self.buf, range.clone())?;
                    let hl = line.trim_end();
                    self.pos = range.end;
                    if hl.is_empty() {
                        let need = content_length.ok_or_else(|| {
                            HttpError::BadRequest("response without content-length".into())
                        })?;
                        self.state = RespState::Body { status, need };
                    } else if let Some((k, v)) = hl.split_once(':') {
                        if k.trim().eq_ignore_ascii_case("content-length") {
                            let len = v.trim().parse().map_err(|_| {
                                HttpError::BadRequest(format!("bad content-length {v:?}"))
                            })?;
                            self.state = RespState::Headers {
                                status,
                                content_length: Some(len),
                            };
                        }
                    } else {
                        return Err(HttpError::BadRequest(format!("malformed header {hl:?}")));
                    }
                }
                RespState::Body { status, need } => {
                    if self.buf.len() - self.pos < need {
                        return Ok(None);
                    }
                    let body = self.buf[self.pos..self.pos + need].to_vec();
                    let consumed = self.pos + need;
                    self.buf.drain(..consumed);
                    self.pos = 0;
                    self.state = RespState::StatusLine;
                    return Ok(Some((status, body)));
                }
            }
        }
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header map (content-length and connection are managed by the
    /// writer).
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Appends `s` to `buf` as a JSON string literal, byte-identical to
/// serde_json's escaping: the two-character escapes for `"` `\` and the
/// named control characters, lowercase `\u00xx` for the rest of the
/// C0 range, and raw UTF-8 for everything else.
fn push_json_string(buf: &mut Vec<u8>, s: &str) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    buf.push(b'"');
    for &b in s.as_bytes() {
        match b {
            b'"' => buf.extend_from_slice(b"\\\""),
            b'\\' => buf.extend_from_slice(b"\\\\"),
            0x08 => buf.extend_from_slice(b"\\b"),
            b'\t' => buf.extend_from_slice(b"\\t"),
            b'\n' => buf.extend_from_slice(b"\\n"),
            0x0c => buf.extend_from_slice(b"\\f"),
            b'\r' => buf.extend_from_slice(b"\\r"),
            0x00..=0x1f => buf.extend_from_slice(&[
                b'\\',
                b'u',
                b'0',
                b'0',
                HEX[usize::from(b >> 4)],
                HEX[usize::from(b & 0xf)],
            ]),
            _ => buf.push(b),
        }
    }
    buf.push(b'"');
}

impl Response {
    /// An empty response with a status.
    pub fn status(status: u16) -> Self {
        Self {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// A 200 JSON response.
    pub fn json<T: serde::Serialize>(value: &T) -> Self {
        Self::json_with_status(200, value)
    }

    /// A JSON response with an explicit status.
    pub fn json_with_status<T: serde::Serialize>(status: u16, value: &T) -> Self {
        let body = serde_json::to_vec(value).expect("DTOs serialise");
        let mut r = Self::status(status);
        r.headers
            .insert("content-type".into(), "application/json".into());
        r.body = body;
        r
    }

    /// A 200 binary response (`application/octet-stream`) — the work
    /// dispatch endpoints speak the journal's CRC-framed wire format,
    /// not JSON.
    pub fn octets(bytes: Vec<u8>) -> Self {
        let mut r = Self::status(200);
        r.headers
            .insert("content-type".into(), "application/octet-stream".into());
        r.body = bytes;
        r
    }

    /// A JSON error response. The `{"error": message}` body is written
    /// directly into one preallocated buffer (byte-identical to what
    /// serde_json would emit) instead of building and then serialising
    /// a `Value` tree.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = Vec::with_capacity(16 + message.len());
        body.extend_from_slice(b"{\"error\":");
        push_json_string(&mut body, message);
        body.push(b'}');
        let mut r = Self::status(status);
        r.headers
            .insert("content-type".into(), "application/json".into());
        r.body = body;
        r
    }

    /// The standard reason phrase for the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialises the response head + body into `buf`, setting
    /// content-length and the connection directive. The head is written
    /// straight into `buf` — no intermediate `String`.
    pub fn write_into(&self, buf: &mut BytesMut, keep_alive: bool) {
        use std::fmt::Write as _;
        struct Head<'a>(&'a mut BytesMut);
        impl std::fmt::Write for Head<'_> {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.extend_from_slice(s.as_bytes());
                Ok(())
            }
        }
        let mut head = Head(buf);
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, self.reason());
        for (k, v) in &self.headers {
            let _ = write!(head, "{k}: {v}\r\n");
        }
        let _ = write!(head, "content-length: {}\r\n", self.body.len());
        let _ = write!(
            head,
            "connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        );
        buf.extend_from_slice(&self.body);
    }

    /// Writes the response to a stream.
    pub fn send<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(256 + self.body.len());
        self.send_buffered(w, &mut buf, keep_alive)
    }

    /// Writes the response to a stream, serialising through the
    /// caller's scratch buffer — keep-alive connections reuse one
    /// buffer for every response instead of allocating per send.
    pub fn send_buffered<W: Write>(
        &self,
        w: &mut W,
        buf: &mut BytesMut,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        buf.clear();
        self.write_into(buf, keep_alive);
        w.write_all(buf)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /api/v2/probes?country=DE&tag=wired HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/api/v2/probes");
        assert_eq!(req.query["country"], "DE");
        assert_eq!(req.query["tag"], "wired");
        assert_eq!(req.segments(), vec!["api", "v2", "probes"]);
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"x":1}"#;
        let raw = format!(
            "POST /api/v2/measurements HTTP/1.1\r\ncontent-length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, body.as_bytes());
        assert!(!req.keep_alive());
    }

    #[test]
    fn rejects_bad_method_and_version() {
        assert!(matches!(
            parse("BREW /tea HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = "POST /x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn closed_connection_is_distinct() {
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("caf%C3%A9"), "café");
    }

    #[test]
    fn percent_decoding_survives_multibyte_after_the_escape() {
        // '%' directly followed by a multi-byte char used to slice the
        // str at a non-char-boundary and panic — a remotely reachable
        // crash. Hostile escapes now pass through verbatim.
        assert_eq!(percent_decode("%中"), "%中");
        assert_eq!(percent_decode("%2中"), "%2中");
        assert_eq!(percent_decode("a%é%41"), "a%éA");
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn response_round_trips_through_writer() {
        let resp = Response::json(&serde_json::json!({"ok": true}));
        let mut buf = BytesMut::new();
        resp.write_into(&mut buf, true);
        let text = String::from_utf8(buf.to_vec()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with(r#"{"ok":true}"#));
        let cl = text
            .lines()
            .find(|l| l.starts_with("content-length"))
            .unwrap();
        assert_eq!(cl, "content-length: 11");
    }

    #[test]
    fn send_buffered_reuses_and_clears_the_scratch_buffer() {
        let mut buf = BytesMut::with_capacity(64);
        let mut wire_a = Vec::new();
        Response::status(204)
            .send_buffered(&mut wire_a, &mut buf, true)
            .unwrap();
        // A second send through the same buffer must not leak bytes of
        // the first response into the stream.
        let mut wire_b = Vec::new();
        Response::error(404, "gone")
            .send_buffered(&mut wire_b, &mut buf, false)
            .unwrap();
        assert!(String::from_utf8(wire_a).unwrap().starts_with("HTTP/1.1 204"));
        let b = String::from_utf8(wire_b).unwrap();
        assert!(b.starts_with("HTTP/1.1 404"), "{b}");
        assert!(!b.contains("204"), "stale bytes leaked: {b}");
    }

    #[test]
    fn error_responses_carry_json() {
        let r = Response::error(404, "no such probe");
        assert_eq!(r.status, 404);
        assert_eq!(r.reason(), "Not Found");
        assert_eq!(r.headers["content-type"], "application/json");
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["error"], "no such probe");
    }

    #[test]
    fn error_bodies_are_exact_serde_json_bytes() {
        // The hand-written error body is pinned byte-for-byte.
        assert_eq!(
            Response::error(404, "no such probe").body,
            br#"{"error":"no such probe"}"#
        );
        // Escaping: quotes, backslashes, named controls, and the
        // \u00xx form for the rest of the C0 range, lowercase hex.
        let tricky = "bad \"x\\y\"\n\tchar \u{1}\u{1f} caf\u{e9}";
        let body = Response::error(400, tricky).body;
        assert_eq!(
            body,
            b"{\"error\":\"bad \\\"x\\\\y\\\"\\n\\tchar \\u0001\\u001f caf\xc3\xa9\"}".to_vec()
        );
        // Where a real serde_json is linked, the two encoders agree
        // exactly (the offline stub serialises to nothing — skip).
        if let Ok(via_serde) = serde_json::to_vec(&serde_json::json!({ "error": tricky })) {
            if !via_serde.is_empty() {
                assert_eq!(via_serde, body);
            }
        }
    }

    #[test]
    fn reason_phrases_cover_served_statuses() {
        for (status, phrase) in [
            (200u16, "OK"),
            (201, "Created"),
            (204, "No Content"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (405, "Method Not Allowed"),
            (413, "Payload Too Large"),
            (500, "Internal Server Error"),
            (503, "Service Unavailable"),
            (599, "Unknown"),
        ] {
            assert_eq!(Response::status(status).reason(), phrase);
        }
    }

    #[test]
    fn delete_method_parses() {
        let req = parse("DELETE /api/v2/measurements/3 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Delete);
        assert_eq!(req.segments(), vec!["api", "v2", "measurements", "3"]);
    }

    #[test]
    fn known_headers_match_case_insensitively() {
        let req = parse(
            "POST /x HTTP/1.1\r\nCONTENT-LENGTH: 2\r\nX-Custom-Header: ignored\r\n\r\nhi",
        )
        .unwrap();
        assert_eq!(req.headers.content_length, Some(2));
        assert_eq!(req.body, b"hi");
        let req = parse("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").unwrap();
        assert!(req.headers.connection_close);
        assert!(!req.keep_alive());
        // A Connection value other than close keeps the default.
        let req = parse("GET / HTTP/1.1\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_matches_tokens_and_is_sticky() {
        // `close` inside a comma-separated token list counts.
        let req = parse("GET / HTTP/1.1\r\nConnection: close, te\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.1\r\nConnection: te , Close\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        // A later keep-alive must not override an earlier close.
        let req = parse(
            "GET / HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n",
        )
        .unwrap();
        assert!(!req.keep_alive());
        // Substrings of close are not close.
        let req = parse("GET / HTTP/1.1\r\nConnection: closed\r\n\r\n").unwrap();
        assert!(req.keep_alive());
    }

    /// Coarse verdict classes for cross-front-end comparison: the two
    /// parsers must agree on the class, and on all fields on accept.
    fn verdict(r: &Result<Request, HttpError>) -> &'static str {
        match r {
            Ok(_) => "ok",
            Err(HttpError::ConnectionClosed) => "closed",
            Err(HttpError::BadRequest(_)) => "bad",
            Err(HttpError::Io(_)) => "io",
        }
    }

    fn parse_incremental(raw: &[u8], chunk: usize) -> Result<Request, HttpError> {
        let mut p = RequestParser::new();
        let mut i = 0;
        while i < raw.len() {
            let end = (i + chunk.max(1)).min(raw.len());
            p.feed(&raw[i..end]);
            i = end;
            match p.poll(false) {
                Ok(Some(req)) => return Ok(req),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        match p.poll(true) {
            Ok(Some(req)) => Ok(req),
            Ok(None) => Err(HttpError::ConnectionClosed),
            Err(e) => Err(e),
        }
    }

    fn assert_fronts_agree(raw: &[u8], chunk: usize) {
        let whole = read_request(&mut BufReader::new(raw));
        let inc = parse_incremental(raw, chunk);
        assert_eq!(
            verdict(&whole),
            verdict(&inc),
            "chunk {chunk}: verdicts diverge on {:?}",
            String::from_utf8_lossy(raw)
        );
        if let (Ok(w), Ok(i)) = (&whole, &inc) {
            assert_eq!(w.method, i.method);
            assert_eq!(w.path, i.path);
            assert_eq!(w.query, i.query);
            assert_eq!(w.headers.content_length, i.headers.content_length);
            assert_eq!(w.headers.connection_close, i.headers.connection_close);
            assert_eq!(w.body, i.body);
        }
    }

    /// A fixed adversarial corpus; the proptest suite extends this with
    /// arbitrary partitions of generated requests.
    const CORPUS: &[&str] = &[
        "GET /api/v2/probes?country=DE&tag=wired HTTP/1.1\r\nHost: x\r\n\r\n",
        "POST /api/v2/measurements HTTP/1.1\r\ncontent-length: 7\r\nConnection: close\r\n\r\n{\"x\":1}",
        "DELETE /api/v2/measurements/3 HTTP/1.1\r\n\r\n",
        "GET /%中 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        "GET /a%20b+c?q=caf%C3%A9 HTTP/1.1\r\n\r\n",
        "BREW /tea HTTP/1.1\r\n\r\n",
        "GET /x HTTP/2\r\n\r\n",
        "GET\r\n\r\n",
        "POST /x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
        "POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        "GET / HTTP/1.1\r\nConnection: close, te\r\n\r\n",
        "GET / HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n",
        "POST /short HTTP/1.1\r\ncontent-length: 50\r\n\r\ntruncated",
        "",
        "\r\n",
        "GET / HTTP/1.1",
        "GET / HTTP/1.1\r\nHost: t\r\n",
    ];

    #[test]
    fn incremental_parser_agrees_with_whole_buffer_at_every_chunk_size() {
        for raw in CORPUS {
            for chunk in [1, 2, 3, 7, 64, 4096] {
                assert_fronts_agree(raw.as_bytes(), chunk);
            }
        }
        // Non-UTF-8 head bytes: read_line fails with InvalidData.
        assert_fronts_agree(b"GET /\xff\xfe HTTP/1.1\r\n\r\n", 1);
        assert_fronts_agree(b"GET / HTTP/1.1\r\nX: \xff\r\n\r\n", 3);
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let raw = b"GET /a HTTP/1.1\r\nHost: t\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let mut p = RequestParser::new();
        // Feed a byte at a time; collect both requests.
        let mut got = Vec::new();
        for (i, &b) in raw.iter().enumerate() {
            p.feed(&[b]);
            let eof = i == raw.len() - 1;
            loop {
                match p.poll(eof) {
                    Ok(Some(req)) => got.push(req),
                    Ok(None) => break,
                    // Once the last request is consumed, a further poll
                    // at EOF reports the clean close — exactly what the
                    // blocking front's next read_request would say.
                    Err(HttpError::ConnectionClosed) => {
                        assert!(eof, "spurious close before the final byte");
                        break;
                    }
                    Err(e) => panic!("pipelined parse failed: {e:?}"),
                }
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].path, "/a");
        assert_eq!(got[1].path, "/b");
        assert_eq!(got[1].body, b"hi");
        assert!(p.is_idle());
    }

    #[test]
    fn oversized_request_line_is_rejected_by_both_fronts() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&raw), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse_incremental(raw.as_bytes(), 4096),
            Err(HttpError::BadRequest(_))
        ));
        // The incremental front rejects an unterminated over-budget
        // line without waiting for the newline.
        let mut p = RequestParser::new();
        p.feed("GET /".as_bytes());
        p.feed("a".repeat(MAX_HEAD_BYTES + 1).as_bytes());
        assert!(matches!(p.poll(false), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn response_parser_round_trips_server_responses() {
        let mut wire = Vec::new();
        Response::json(&serde_json::json!({"ok": true}))
            .send(&mut wire, true)
            .unwrap();
        Response::error(404, "gone").send(&mut wire, false).unwrap();
        let mut p = ResponseParser::new();
        // Dribble one byte at a time; both responses must come out.
        let mut got = Vec::new();
        for &b in &wire {
            p.feed(&[b]);
            while let Some(r) = p.poll().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 200);
        assert_eq!(got[1].0, 404);
        assert_eq!(got[1].1, br#"{"error":"gone"}"#);
        assert!(p.is_idle());
    }

    #[test]
    fn buffered_reads_share_one_scratch_line() {
        let raw = "GET /a HTTP/1.1\r\nHost: t\r\n\r\nGET /b HTTP/1.1\r\nHost: t\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let mut line = String::new();
        let a = read_request_buffered(&mut reader, &mut line).unwrap();
        let b = read_request_buffered(&mut reader, &mut line).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
    }
}
