//! API data-transfer objects, mirroring the field shapes of the RIPE
//! Atlas v2 API where they exist.

use serde::{Deserialize, Serialize};
use shears_atlas::{Probe, RttSample};
use shears_cloud::Region;

/// A probe as served by `GET /api/v2/probes`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeDto {
    /// Probe id.
    pub id: u32,
    /// ISO country code.
    pub country_code: String,
    /// Continent short label.
    pub continent: String,
    /// Latitude.
    pub latitude: f64,
    /// Longitude.
    pub longitude: f64,
    /// Tag list.
    pub tags: Vec<String>,
    /// Whether the probe is wireless-tagged.
    pub is_wireless: bool,
}

impl From<&Probe> for ProbeDto {
    fn from(p: &Probe) -> Self {
        Self {
            id: p.id.0,
            country_code: p.country.clone(),
            continent: p.continent.short().to_string(),
            latitude: p.location.lat,
            longitude: p.location.lon,
            tags: p.tags.clone(),
            is_wireless: p.is_wireless_tagged(),
        }
    }
}

/// A cloud region as served by `GET /api/v2/regions`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionDto {
    /// Index into the catalogue (the measurement target id).
    pub index: usize,
    /// Provider display name.
    pub provider: String,
    /// Region code.
    pub code: String,
    /// Metro city.
    pub city: String,
    /// ISO country code.
    pub country_code: String,
}

impl RegionDto {
    /// Builds the DTO for catalogue entry `index`.
    pub fn new(index: usize, region: &Region) -> Self {
        Self {
            index,
            provider: region.provider.to_string(),
            code: region.code.to_string(),
            city: region.city.to_string(),
            country_code: region.country.to_string(),
        }
    }
}

/// Body of `POST /api/v2/measurements`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CreateMeasurementDto {
    /// Catalogue index of the target region.
    pub target_region: usize,
    /// Packets per ping (default 3).
    #[serde(default = "default_packets")]
    pub packets: u32,
    /// Measurement rounds to run (default 1, capped by the service).
    #[serde(default = "default_rounds")]
    pub rounds: u32,
    /// Max probes to involve (default 50, capped by the service).
    #[serde(default = "default_probe_limit")]
    pub probe_limit: usize,
    /// Restrict to probes in this country.
    #[serde(default)]
    pub country: Option<String>,
    /// Fault-injection profile to run the measurement under
    /// (`"lossy"`, `"blackout"`, `"chaos"`, …; default: no faults).
    #[serde(default)]
    pub fault_profile: Option<String>,
    /// Retries per failed round (default 0, capped by the service).
    /// Retried-and-still-failed rounds are refunded.
    #[serde(default)]
    pub retries: Option<u32>,
    /// Whether to persist this measurement to the service's durability
    /// directory (default `true`; a no-op when the service runs without
    /// one). Persisted measurements survive restarts via
    /// `POST /api/v2/measurements/resume`.
    #[serde(default = "default_durability")]
    pub durability: bool,
}

fn default_packets() -> u32 {
    3
}
fn default_rounds() -> u32 {
    1
}
fn default_probe_limit() -> usize {
    50
}
fn default_durability() -> bool {
    true
}

/// Response of `POST /api/v2/measurements/resume`: what was recovered
/// from the durability directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeReportDto {
    /// Measurements loaded from disk that were not already in memory.
    pub recovered: usize,
    /// Files that failed their checksum or decode and were skipped.
    pub skipped: usize,
    /// Measurements now resident (recovered + already live).
    pub total: usize,
    /// Credit balance after restoring the persisted ledger.
    pub credits_balance: u64,
}

/// A measurement as served by `GET /api/v2/measurements/{id}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementDto {
    /// Measurement id.
    pub id: u64,
    /// Catalogue index of the target.
    pub target_region: usize,
    /// Target label, e.g. `Amazon/eu-central-1 (Frankfurt)`.
    pub target_label: String,
    /// Probes that participated.
    pub probes: usize,
    /// Stored result rows.
    pub results: usize,
    /// Credits spent running it.
    pub credits_spent: u64,
    /// Credits refunded for rounds that failed even after retries.
    pub credits_refunded: u64,
    /// Fault profile the measurement ran under, if any.
    pub fault_profile: Option<String>,
}

/// Body of `POST /api/v2/traceroutes`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CreateTracerouteDto {
    /// Catalogue index of the target region.
    pub target_region: usize,
    /// Max probes to trace from (default 10, capped by the service).
    #[serde(default = "default_trace_probes")]
    pub probe_limit: usize,
    /// Restrict to probes in this country.
    #[serde(default)]
    pub country: Option<String>,
}

fn default_trace_probes() -> usize {
    10
}

/// One hop of a traceroute result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopDto {
    /// TTL of the probe that elicited this hop.
    pub ttl: u8,
    /// Node role at this hop ("AccessRouter", "IxpHub", …).
    pub kind: String,
    /// RTT to the hop (ms); `null` when the router stayed silent.
    pub rtt_ms: Option<f64>,
}

/// One probe's traceroute in `POST /api/v2/traceroutes`' response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracerouteDto {
    /// Originating probe.
    pub probe_id: u32,
    /// Whether the destination answered.
    pub reached: bool,
    /// Hops in path order.
    pub hops: Vec<HopDto>,
}

/// Aggregate statistics of one measurement, as served by
/// `GET /api/v2/measurements/{id}/stats` — computed server-side from
/// the indexed analysis frame so clients don't have to download every
/// result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementStatsDto {
    /// Measurement id.
    pub id: u64,
    /// Stored result rows.
    pub samples: usize,
    /// Rows with at least one reply.
    pub responded: usize,
    /// Reply rate; `null` when the measurement stored no rows (an
    /// empty store has no reply-rate evidence).
    pub response_rate: Option<f64>,
    /// Probes with at least one responding round.
    pub probes_with_data: usize,
    /// Countries with at least one responding probe.
    pub countries_measured: usize,
    /// Probe with the lowest minimum RTT, when any responded.
    pub fastest_probe_id: Option<u32>,
    /// That probe's minimum RTT (ms).
    pub fastest_probe_min_ms: Option<f64>,
    /// Country with the lowest minimum RTT.
    pub fastest_country: Option<String>,
    /// That country's minimum RTT (ms).
    pub fastest_country_min_ms: Option<f64>,
    /// Fault profile the measurement ran under, if any.
    pub fault_profile: Option<String>,
    /// Probe-rounds that needed at least one retry.
    pub retried_rounds: usize,
    /// Credits refunded for rounds that failed even after retries.
    pub credits_refunded: u64,
}

/// One result row of `GET /api/v2/measurements/{id}/results`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultDto {
    /// Originating probe.
    pub probe_id: u32,
    /// Round timestamp, simulated nanoseconds.
    pub at_ns: u64,
    /// Minimum RTT (ms), `null` when all packets were lost.
    pub min_ms: Option<f64>,
    /// Average RTT (ms).
    pub avg_ms: Option<f64>,
    /// Packets sent.
    pub sent: u8,
    /// Replies received.
    pub received: u8,
}

impl From<&RttSample> for ResultDto {
    fn from(s: &RttSample) -> Self {
        let finite = |v: f32| {
            if v.is_finite() {
                Some(f64::from(v))
            } else {
                None
            }
        };
        Self {
            probe_id: s.probe.0,
            at_ns: s.at.as_nanos(),
            min_ms: finite(s.min_ms),
            avg_ms: finite(s.avg_ms),
            sent: s.sent,
            received: s.received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::ProbeId;
    use shears_netsim::SimTime;

    #[test]
    fn result_dto_maps_lost_rounds_to_null() {
        let lost = RttSample {
            probe: ProbeId(7),
            region: 3,
            at: SimTime::from_hours(6),
            min_ms: f32::INFINITY,
            avg_ms: f32::INFINITY,
            sent: 3,
            received: 0,
        };
        let dto = ResultDto::from(&lost);
        assert_eq!(dto.min_ms, None);
        assert_eq!(dto.avg_ms, None);
        let json = serde_json::to_string(&dto).unwrap();
        assert!(json.contains("\"min_ms\":null"));
    }

    #[test]
    fn create_measurement_defaults() {
        let dto: CreateMeasurementDto =
            serde_json::from_str(r#"{"target_region": 5}"#).unwrap();
        assert_eq!(dto.packets, 3);
        assert_eq!(dto.rounds, 1);
        assert_eq!(dto.probe_limit, 50);
        assert!(dto.country.is_none());
        assert!(dto.fault_profile.is_none());
        assert!(dto.retries.is_none());
        assert!(dto.durability, "measurements are durable by default");
    }

    #[test]
    fn create_measurement_durability_can_be_opted_out() {
        let dto: CreateMeasurementDto =
            serde_json::from_str(r#"{"target_region": 5, "durability": false}"#).unwrap();
        assert!(!dto.durability);
    }

    #[test]
    fn create_measurement_accepts_fault_fields() {
        let dto: CreateMeasurementDto = serde_json::from_str(
            r#"{"target_region": 5, "fault_profile": "chaos", "retries": 2}"#,
        )
        .unwrap();
        assert_eq!(dto.fault_profile.as_deref(), Some("chaos"));
        assert_eq!(dto.retries, Some(2));
    }
}
