//! Distributed work dispatch: the coordinator-side shard queue and the
//! binary wire protocol behind the `/api/v2/work/*` endpoints.
//!
//! A campaign is partitioned into contiguous probe shards
//! ([`shears_atlas::Campaign::shard_ranges`]); workers claim shards,
//! execute rounds, and stream each completed round back as one framed
//! submission. The [`WorkQueue`] is the coordinator's single source of
//! truth for assignment, liveness, and accepted frames:
//!
//! * **Heartbeats** — every worker request (poll, heartbeat, frame)
//!   refreshes that worker's liveness clock; [`WorkQueue::sweep`]
//!   declares a worker dead after `heartbeat_timeout` of silence and
//!   frees its shard for a survivor.
//! * **Round deadlines** — an assigned shard must deliver its next
//!   round within `round_timeout`; a miss re-arms the deadline with
//!   decorrelated-jitter backoff (the [`shears_atlas::RetryPolicy`]
//!   discipline), and after `max_round_retries` misses the assignment
//!   is stripped so a survivor can take over even though the original
//!   worker still heartbeats (it may be wedged mid-round).
//! * **Idempotent merge** — every accepted `(shard, round)` frame is
//!   digest-pinned. A bit-identical resubmission (WAL replay after a
//!   worker restart, or a fenced worker racing its replacement) is
//!   counted and dropped, never double-merged; a *mismatched*
//!   resubmission is rejected loudly, because shard rounds are
//!   deterministic and two honest computations cannot disagree.
//!
//! The wire format reuses the campaign journal's CRC-framed byte
//! encoding (`[len][crc32][payload]`) rather than JSON: round frames
//! are columnar sample blocks, and the offline build's serde stub
//! cannot round-trip JSON anyway. Every message is one frame whose
//! payload starts with a tag byte.

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use shears_atlas::journal::{frame, get_samples_wire, put_samples_wire, read_frame, ByteReader};
use shears_atlas::ResultStore;
use shears_netsim::fault::Fnv1a;

/// Protocol version spoken by both sides; a mismatch aborts register.
pub const WORK_PROTO_VERSION: u32 = 1;

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_POLL: u8 = 3;
const TAG_REPLY: u8 = 4;
const TAG_FRAME: u8 = 5;
const TAG_VERDICT: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;

/// One shard assignment handed to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkAssignment {
    /// Shard index.
    pub shard: u32,
    /// Total shard count (fixed for the campaign).
    pub shard_count: u32,
    /// First round the coordinator still needs from this shard.
    pub start_round: u32,
    /// Total rounds in the campaign (the worker runs
    /// `start_round..rounds`).
    pub rounds: u32,
}

/// Coordinator's answer to a poll or heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkReply {
    /// No shard available right now; poll again after a heartbeat
    /// interval.
    Idle,
    /// A shard to run (or the worker's current assignment, restated).
    Assigned(WorkAssignment),
    /// The campaign is fully merged; the worker may exit.
    Done,
    /// The campaign failed (strict mode); the worker must exit.
    Abort,
}

/// One completed round, as submitted by a worker.
#[derive(Debug, Clone)]
pub struct FrameSubmission {
    /// Submitting worker.
    pub worker: u64,
    /// Shard index.
    pub shard: u32,
    /// Round index.
    pub round: u32,
    /// Gross credits the round debited.
    pub gross: u64,
    /// Credits the round refunded.
    pub refund: u64,
    /// The round's samples.
    pub store: ResultStore,
}

/// Coordinator's verdict on a submitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// First sighting of this `(shard, round)`: merged.
    Accepted,
    /// Bit-identical duplicate of an already-accepted frame: dropped.
    Duplicate,
    /// Malformed, out of range, or *divergent* duplicate: refused.
    Rejected,
}

// --- Codec -----------------------------------------------------------

fn unframe(body: &[u8]) -> Result<&[u8], &'static str> {
    match read_frame(body, 0) {
        Ok(Some((payload, _))) => Ok(payload),
        _ => Err("bad work frame"),
    }
}

fn expect_tag(r: &mut ByteReader<'_>, tag: u8) -> Result<(), &'static str> {
    if r.u8()? != tag {
        return Err("unexpected message tag");
    }
    Ok(())
}

/// `POST /api/v2/work/register` request body.
pub fn encode_hello() -> Vec<u8> {
    let mut p = vec![TAG_HELLO];
    p.extend_from_slice(&WORK_PROTO_VERSION.to_le_bytes());
    frame(&p)
}

/// Decodes a hello; returns the client's protocol version.
pub fn decode_hello(body: &[u8]) -> Result<u32, &'static str> {
    let mut r = ByteReader::new(unframe(body)?);
    expect_tag(&mut r, TAG_HELLO)?;
    r.u32()
}

/// Register response: worker id, heartbeat interval, and the campaign's
/// journal header ([`shears_atlas::JournalHeader::to_wire`]) from which
/// the worker reconstructs and digest-validates its view of the fleet.
pub fn encode_welcome(worker: u64, heartbeat_interval_ms: u64, header_wire: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + header_wire.len());
    p.push(TAG_WELCOME);
    p.extend_from_slice(&worker.to_le_bytes());
    p.extend_from_slice(&heartbeat_interval_ms.to_le_bytes());
    p.extend_from_slice(&(header_wire.len() as u32).to_le_bytes());
    p.extend_from_slice(header_wire);
    frame(&p)
}

/// Decodes a welcome into `(worker, heartbeat_interval_ms, header_wire)`.
pub fn decode_welcome(body: &[u8]) -> Result<(u64, u64, Vec<u8>), &'static str> {
    let mut r = ByteReader::new(unframe(body)?);
    expect_tag(&mut r, TAG_WELCOME)?;
    let worker = r.u64()?;
    let interval = r.u64()?;
    let len = r.u32()? as usize;
    let header = r.take(len)?.to_vec();
    Ok((worker, interval, header))
}

/// `POST /api/v2/work/{poll,heartbeat}` request body.
pub fn encode_poll(worker: u64) -> Vec<u8> {
    let mut p = vec![TAG_POLL];
    p.extend_from_slice(&worker.to_le_bytes());
    frame(&p)
}

/// Decodes a poll/heartbeat; returns the worker id.
pub fn decode_poll(body: &[u8]) -> Result<u64, &'static str> {
    let mut r = ByteReader::new(unframe(body)?);
    expect_tag(&mut r, TAG_POLL)?;
    r.u64()
}

/// Poll/heartbeat response body.
pub fn encode_reply(reply: &WorkReply) -> Vec<u8> {
    frame(&reply_payload(reply))
}

fn reply_from(r: &mut ByteReader<'_>) -> Result<WorkReply, &'static str> {
    match r.u8()? {
        0 => Ok(WorkReply::Idle),
        1 => Ok(WorkReply::Assigned(WorkAssignment {
            shard: r.u32()?,
            shard_count: r.u32()?,
            start_round: r.u32()?,
            rounds: r.u32()?,
        })),
        2 => Ok(WorkReply::Done),
        3 => Ok(WorkReply::Abort),
        _ => Err("unknown reply kind"),
    }
}

/// Decodes a poll/heartbeat response.
pub fn decode_reply(body: &[u8]) -> Result<WorkReply, &'static str> {
    let mut r = ByteReader::new(unframe(body)?);
    expect_tag(&mut r, TAG_REPLY)?;
    reply_from(&mut r)
}

/// `POST /api/v2/work/frame` request body: one completed round.
pub fn encode_frame_submit(
    worker: u64,
    shard: u32,
    round: u32,
    gross: u64,
    refund: u64,
    store: &ResultStore,
) -> Vec<u8> {
    frame(&frame_submit_payload(worker, shard, round, gross, refund, store))
}

fn frame_submit_from(r: &mut ByteReader<'_>) -> Result<FrameSubmission, &'static str> {
    let worker = r.u64()?;
    let shard = r.u32()?;
    let round = r.u32()?;
    let gross = r.u64()?;
    let refund = r.u64()?;
    let store = get_samples_wire(r)?;
    Ok(FrameSubmission {
        worker,
        shard,
        round,
        gross,
        refund,
        store,
    })
}

/// Decodes a frame submission.
pub fn decode_frame_submit(body: &[u8]) -> Result<FrameSubmission, &'static str> {
    let mut r = ByteReader::new(unframe(body)?);
    expect_tag(&mut r, TAG_FRAME)?;
    frame_submit_from(&mut r)
}

/// Frame response body.
pub fn encode_verdict(verdict: FrameVerdict, current: bool) -> Vec<u8> {
    let v = match verdict {
        FrameVerdict::Accepted => 0,
        FrameVerdict::Duplicate => 1,
        FrameVerdict::Rejected => 2,
    };
    frame(&[TAG_VERDICT, v, u8::from(current)])
}

/// Decodes a frame verdict into `(verdict, still_owns_shard)`.
pub fn decode_verdict(body: &[u8]) -> Result<(FrameVerdict, bool), &'static str> {
    let mut r = ByteReader::new(unframe(body)?);
    expect_tag(&mut r, TAG_VERDICT)?;
    let verdict = match r.u8()? {
        0 => FrameVerdict::Accepted,
        1 => FrameVerdict::Duplicate,
        2 => FrameVerdict::Rejected,
        _ => return Err("unknown verdict"),
    };
    let current = r.u8()? != 0;
    Ok((verdict, current))
}

// --- Stream codec ----------------------------------------------------
//
// The TCP work plane ships the same tagged payloads as raw CRC frames
// on one long-lived stream instead of one HTTP body per request. Two
// shapes exist only on the stream: HEARTBEAT (explicit liveness when
// the send window has been idle past the tick) and the *tagged*
// verdict, which carries `(shard, round)` so a pipelined worker can
// match out-of-order acks to its in-flight frames. A fence is pushed
// as an unsolicited `Reply(Idle)`.

/// Stream HELLO payload; `reconnect` marks a re-established stream
/// (counted in [`WorkMetrics::stream_reconnects`]).
pub fn stream_hello_payload(reconnect: bool) -> Vec<u8> {
    let mut p = vec![TAG_HELLO];
    p.extend_from_slice(&WORK_PROTO_VERSION.to_le_bytes());
    p.push(u8::from(reconnect));
    p
}

/// Stream WELCOME payload (same layout as the HTTP register response).
pub fn welcome_payload(worker: u64, heartbeat_interval_ms: u64, header_wire: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + header_wire.len());
    p.push(TAG_WELCOME);
    p.extend_from_slice(&worker.to_le_bytes());
    p.extend_from_slice(&heartbeat_interval_ms.to_le_bytes());
    p.extend_from_slice(&(header_wire.len() as u32).to_le_bytes());
    p.extend_from_slice(header_wire);
    p
}

/// Stream POLL payload (liveness + acquire/restate work).
pub fn poll_payload(worker: u64) -> Vec<u8> {
    let mut p = vec![TAG_POLL];
    p.extend_from_slice(&worker.to_le_bytes());
    p
}

/// Stream HEARTBEAT payload: liveness only, no reply is sent.
pub fn heartbeat_payload(worker: u64) -> Vec<u8> {
    let mut p = vec![TAG_HEARTBEAT];
    p.extend_from_slice(&worker.to_le_bytes());
    p
}

/// Stream REPLY payload (poll answer or unsolicited coordinator push).
pub fn reply_payload(reply: &WorkReply) -> Vec<u8> {
    let mut p = vec![TAG_REPLY];
    match reply {
        WorkReply::Idle => p.push(0),
        WorkReply::Assigned(a) => {
            p.push(1);
            p.extend_from_slice(&a.shard.to_le_bytes());
            p.extend_from_slice(&a.shard_count.to_le_bytes());
            p.extend_from_slice(&a.start_round.to_le_bytes());
            p.extend_from_slice(&a.rounds.to_le_bytes());
        }
        WorkReply::Done => p.push(2),
        WorkReply::Abort => p.push(3),
    }
    p
}

/// Stream FRAME payload: one completed round.
pub fn frame_submit_payload(
    worker: u64,
    shard: u32,
    round: u32,
    gross: u64,
    refund: u64,
    store: &ResultStore,
) -> Vec<u8> {
    let mut p = Vec::with_capacity(40 + store.len() * 24);
    p.push(TAG_FRAME);
    p.extend_from_slice(&worker.to_le_bytes());
    p.extend_from_slice(&shard.to_le_bytes());
    p.extend_from_slice(&round.to_le_bytes());
    p.extend_from_slice(&gross.to_le_bytes());
    p.extend_from_slice(&refund.to_le_bytes());
    put_samples_wire(&mut p, store);
    p
}

/// Stream VERDICT payload, tagged with `(shard, round)` so out-of-order
/// acks can be matched to in-flight frames.
pub fn verdict_payload(shard: u32, round: u32, verdict: FrameVerdict, current: bool) -> Vec<u8> {
    let v = match verdict {
        FrameVerdict::Accepted => 0,
        FrameVerdict::Duplicate => 1,
        FrameVerdict::Rejected => 2,
    };
    let mut p = vec![TAG_VERDICT];
    p.extend_from_slice(&shard.to_le_bytes());
    p.extend_from_slice(&round.to_le_bytes());
    p.push(v);
    p.push(u8::from(current));
    p
}

/// One decoded stream message (either direction).
#[derive(Debug)]
pub enum StreamMsg {
    /// Client HELLO: protocol version + reconnect flag.
    Hello {
        /// Client's [`WORK_PROTO_VERSION`].
        version: u32,
        /// Whether this stream replaces one that dropped.
        reconnect: bool,
    },
    /// Server WELCOME: identity + campaign header.
    Welcome {
        /// Assigned worker id.
        worker: u64,
        /// Heartbeat interval, milliseconds.
        heartbeat_ms: u64,
        /// `JournalHeader::to_wire` bytes.
        header: Vec<u8>,
    },
    /// Client poll: liveness + acquire/restate work.
    Poll {
        /// Polling worker.
        worker: u64,
    },
    /// Client explicit heartbeat: liveness only, no reply.
    Heartbeat {
        /// Heartbeating worker.
        worker: u64,
    },
    /// Server control reply (poll answer or unsolicited push).
    Reply(WorkReply),
    /// Client round frame.
    Frame(Box<FrameSubmission>),
    /// Server verdict for `(shard, round)`.
    Verdict {
        /// Shard the verdict is for.
        shard: u32,
        /// Round the verdict is for.
        round: u32,
        /// The coordinator's verdict.
        verdict: FrameVerdict,
        /// Whether the submitter still owns the shard.
        current: bool,
    },
}

/// Decodes one stream message payload (the bytes inside a CRC frame).
pub fn decode_stream_msg(payload: &[u8]) -> Result<StreamMsg, &'static str> {
    let mut r = ByteReader::new(payload);
    match r.u8()? {
        TAG_HELLO => {
            let version = r.u32()?;
            let reconnect = if r.remaining() > 0 { r.u8()? != 0 } else { false };
            Ok(StreamMsg::Hello { version, reconnect })
        }
        TAG_WELCOME => {
            let worker = r.u64()?;
            let heartbeat_ms = r.u64()?;
            let len = r.u32()? as usize;
            let header = r.take(len)?.to_vec();
            Ok(StreamMsg::Welcome {
                worker,
                heartbeat_ms,
                header,
            })
        }
        TAG_POLL => Ok(StreamMsg::Poll { worker: r.u64()? }),
        TAG_HEARTBEAT => Ok(StreamMsg::Heartbeat { worker: r.u64()? }),
        TAG_REPLY => Ok(StreamMsg::Reply(reply_from(&mut r)?)),
        TAG_FRAME => Ok(StreamMsg::Frame(Box::new(frame_submit_from(&mut r)?))),
        TAG_VERDICT => {
            let shard = r.u32()?;
            let round = r.u32()?;
            let verdict = match r.u8()? {
                0 => FrameVerdict::Accepted,
                1 => FrameVerdict::Duplicate,
                2 => FrameVerdict::Rejected,
                _ => return Err("unknown verdict"),
            };
            let current = r.u8()? != 0;
            Ok(StreamMsg::Verdict {
                shard,
                round,
                verdict,
                current,
            })
        }
        _ => Err("unexpected message tag"),
    }
}

// --- Coordinator queue -----------------------------------------------

/// Static description of the distributed campaign, fixed at queue
/// construction.
#[derive(Debug, Clone)]
pub struct WorkSpec {
    /// Rounds per shard.
    pub rounds: u32,
    /// Number of shards (independent of worker count).
    pub shard_count: u32,
    /// Per-shard `[start, end)` probe-index ranges — the garbage
    /// defense: a submitted sample whose probe falls outside its
    /// shard's range is rejected before it can touch the merge.
    pub probe_ranges: Vec<(u32, u32)>,
    /// `JournalHeader::to_wire` bytes shipped to workers at register.
    pub header_wire: Vec<u8>,
    /// How often idle workers should poll / running workers heartbeat.
    pub heartbeat_interval: Duration,
    /// Silence after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// How long an assigned shard may sit on one round.
    pub round_timeout: Duration,
    /// Backoff floor for a missed round deadline.
    pub retry_base: Duration,
    /// Backoff ceiling.
    pub retry_cap: Duration,
    /// Deadline misses after which the assignment is stripped and the
    /// shard handed to a survivor.
    pub max_round_retries: u32,
    /// Seed for the backoff jitter (deterministic per campaign).
    pub seed: u64,
}

impl WorkSpec {
    /// Localhost-test defaults: snappy heartbeats, short deadlines.
    pub fn quick(rounds: u32, shard_count: u32) -> Self {
        Self {
            rounds,
            shard_count,
            probe_ranges: Vec::new(),
            header_wire: Vec::new(),
            heartbeat_interval: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_millis(250),
            round_timeout: Duration::from_millis(500),
            retry_base: Duration::from_millis(50),
            retry_cap: Duration::from_millis(400),
            max_round_retries: 3,
            seed: 0x5EED_D157,
        }
    }
}

/// Point-in-time copy of the queue's robustness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkMetrics {
    /// Workers currently considered live.
    pub workers_live: u64,
    /// Workers ever registered (includes restarts — each incarnation
    /// registers anew).
    pub workers_registered: u64,
    /// Heartbeat deadlines blown (each one declared a worker dead).
    pub heartbeats_missed: u64,
    /// Shard assignments handed to a worker other than the first.
    pub shards_reassigned: u64,
    /// Round deadlines blown (each re-armed with jittered backoff).
    pub rounds_retried: u64,
    /// Bit-identical resubmissions detected and dropped.
    pub duplicate_frames_dropped: u64,
    /// Frames accepted into the merge.
    pub frames_accepted: u64,
    /// Frames refused (malformed, out of range, or divergent).
    pub frames_rejected: u64,
    /// Rounds abandoned as lost (degraded completion only).
    pub lost_rounds: u64,
    /// Work-plane TCP streams opened (HELLO handshakes).
    pub streams_opened: u64,
    /// Streams re-established after a drop (HELLO reconnect flag).
    pub stream_reconnects: u64,
    /// Round frames decoded from streams whose verdicts have not yet
    /// reached the wire (pipelining gauge).
    pub frames_in_flight: u64,
    /// High-water mark of `frames_in_flight`.
    pub frames_in_flight_peak: u64,
    /// Control replies pushed down a stream unprompted (fence,
    /// reassignment notice, done, abort).
    pub replies_pushed: u64,
    /// Verdicts on the wire within 1ms of frame arrival.
    pub verdicts_le_1ms: u64,
    /// Verdicts on the wire within 10ms.
    pub verdicts_le_10ms: u64,
    /// Verdicts on the wire within 100ms.
    pub verdicts_le_100ms: u64,
    /// Verdicts slower than 100ms.
    pub verdicts_gt_100ms: u64,
}

/// One accepted round, waiting for (or consumed by) the merge.
#[derive(Debug)]
pub struct RoundFrame {
    /// Gross credits the round debited.
    pub gross: u64,
    /// Credits the round refunded.
    pub refund: u64,
    /// The round's samples.
    pub store: ResultStore,
}

#[derive(Debug)]
struct ShardState {
    assigned: Option<u64>,
    ever_assigned: bool,
    /// Lowest round neither accepted nor marked lost: where a (re)
    /// assignment starts.
    next_needed: u32,
    /// When the next round must arrive (assigned shards only).
    deadline: Option<Instant>,
    retries: u32,
    backoff: Duration,
    /// Accepted-but-unmerged rounds.
    frames: HashMap<u32, RoundFrame>,
    /// Digest of every accepted round, kept past the merge so late
    /// duplicates are still recognised.
    digests: HashMap<u32, u64>,
    lost: HashSet<u32>,
}

#[derive(Debug)]
struct WorkerState {
    last_seen: Instant,
    live: bool,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<ShardState>,
    workers: HashMap<u64, WorkerState>,
    next_worker: u64,
    finished: bool,
    aborted: bool,
    last_accept: Option<Instant>,
    rng: u64,
    metrics: WorkMetrics,
}

/// The coordinator's shard queue: assignment, liveness, dedup, merge
/// hand-off. All waits are bounded — no caller ever blocks longer than
/// the timeout it passes in.
pub struct WorkQueue {
    spec: WorkSpec,
    inner: Mutex<Inner>,
    /// Signalled whenever a frame is accepted or the campaign
    /// finishes/aborts; the merge loop waits on it with a deadline.
    ready: Condvar,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decorrelated jitter: `min(cap, base + U[0,1) * (prev*3 - base))`.
fn decorrelated(rng: &mut u64, prev: Duration, base: Duration, cap: Duration) -> Duration {
    let unit = (splitmix(rng) >> 11) as f64 / (1u64 << 53) as f64;
    let span = (prev.as_secs_f64() * 3.0 - base.as_secs_f64()).max(0.0);
    let next = base.as_secs_f64() + unit * span;
    Duration::from_secs_f64(next.min(cap.as_secs_f64()))
}

impl WorkQueue {
    /// Builds a queue over the spec; all shards start unassigned.
    pub fn new(spec: WorkSpec) -> Self {
        let shards = (0..spec.shard_count)
            .map(|_| ShardState {
                assigned: None,
                ever_assigned: false,
                next_needed: 0,
                deadline: None,
                retries: 0,
                backoff: spec.retry_base,
                frames: HashMap::new(),
                digests: HashMap::new(),
                lost: HashSet::new(),
            })
            .collect();
        let rng = spec.seed | 1;
        Self {
            spec,
            inner: Mutex::new(Inner {
                shards,
                workers: HashMap::new(),
                next_worker: 1,
                finished: false,
                aborted: false,
                last_accept: None,
                rng,
                metrics: WorkMetrics::default(),
            }),
            ready: Condvar::new(),
        }
    }

    /// The campaign spec this queue dispatches.
    pub fn spec(&self) -> &WorkSpec {
        &self.spec
    }

    /// Registers a new worker incarnation; returns its id.
    pub fn register(&self, now: Instant) -> u64 {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        let id = inner.next_worker;
        inner.next_worker += 1;
        inner.workers.insert(
            id,
            WorkerState {
                last_seen: now,
                live: true,
            },
        );
        inner.metrics.workers_registered += 1;
        inner.metrics.workers_live += 1;
        id
    }

    fn touch(inner: &mut Inner, worker: u64, now: Instant) {
        let entry = inner.workers.entry(worker).or_insert(WorkerState {
            last_seen: now,
            live: false,
        });
        entry.last_seen = now;
        if !entry.live {
            entry.live = true;
            inner.metrics.workers_live += 1;
        }
    }

    fn owned_shard(inner: &Inner, worker: u64) -> Option<u32> {
        inner
            .shards
            .iter()
            .position(|s| s.assigned == Some(worker))
            .map(|s| s as u32)
    }

    fn assignment(&self, inner: &Inner, shard: u32) -> WorkAssignment {
        WorkAssignment {
            shard,
            shard_count: self.spec.shard_count,
            start_round: inner.shards[shard as usize].next_needed,
            rounds: self.spec.rounds,
        }
    }

    fn all_done(&self, inner: &Inner) -> bool {
        inner.shards.iter().all(|s| s.next_needed >= self.spec.rounds)
    }

    /// Poll: heartbeat + acquire work. An idle worker is handed the
    /// lowest unassigned, unfinished shard; a worker that already owns
    /// a shard has its assignment restated (resume after a dropped
    /// reply).
    pub fn poll(&self, worker: u64, now: Instant) -> WorkReply {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        Self::touch(&mut inner, worker, now);
        if inner.aborted {
            return WorkReply::Abort;
        }
        if inner.finished || self.all_done(&inner) {
            return WorkReply::Done;
        }
        if let Some(shard) = Self::owned_shard(&inner, worker) {
            if inner.shards[shard as usize].next_needed < self.spec.rounds {
                return WorkReply::Assigned(self.assignment(&inner, shard));
            }
            // The worker's shard is complete: release it and fall
            // through to pick up more work — holding a finished shard
            // would wedge the worker restating an empty assignment.
            let s = &mut inner.shards[shard as usize];
            s.assigned = None;
            s.deadline = None;
        }
        let free = inner
            .shards
            .iter()
            .position(|s| s.assigned.is_none() && s.next_needed < self.spec.rounds);
        match free {
            Some(i) => {
                let reassigned = inner.shards[i].ever_assigned;
                {
                    let s = &mut inner.shards[i];
                    s.assigned = Some(worker);
                    s.ever_assigned = true;
                    s.deadline = Some(now + self.spec.round_timeout);
                    s.retries = 0;
                    s.backoff = self.spec.retry_base;
                }
                if reassigned {
                    inner.metrics.shards_reassigned += 1;
                }
                WorkReply::Assigned(self.assignment(&inner, i as u32))
            }
            None => WorkReply::Idle,
        }
    }

    /// Heartbeat: liveness refresh only — never acquires new work, but
    /// restates ownership so a fenced worker learns it lost its shard
    /// (reply `Idle`) and falls back to polling.
    pub fn heartbeat(&self, worker: u64, now: Instant) -> WorkReply {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        Self::touch(&mut inner, worker, now);
        if inner.aborted {
            return WorkReply::Abort;
        }
        if inner.finished || self.all_done(&inner) {
            return WorkReply::Done;
        }
        match Self::owned_shard(&inner, worker) {
            Some(shard) => WorkReply::Assigned(self.assignment(&inner, shard)),
            None => WorkReply::Idle,
        }
    }

    fn advance(spec_rounds: u32, s: &mut ShardState) {
        while s.next_needed < spec_rounds
            && (s.digests.contains_key(&s.next_needed) || s.lost.contains(&s.next_needed))
        {
            s.next_needed += 1;
        }
    }

    /// Content digest of a round frame — deliberately excludes the
    /// worker id, so the same round computed by two workers (or
    /// replayed from a WAL) hashes identically.
    fn frame_digest(sub: &FrameSubmission) -> u64 {
        let mut bytes = Vec::with_capacity(24 + sub.store.len() * 24);
        bytes.extend_from_slice(&sub.shard.to_le_bytes());
        bytes.extend_from_slice(&sub.round.to_le_bytes());
        bytes.extend_from_slice(&sub.gross.to_le_bytes());
        bytes.extend_from_slice(&sub.refund.to_le_bytes());
        put_samples_wire(&mut bytes, &sub.store);
        Fnv1a::digest_of(&bytes)
    }

    /// Submit one completed round. Accepts regardless of current
    /// ownership (a fenced worker's in-flight round is still valid
    /// work); the returned flag says whether the submitter still owns
    /// the shard.
    pub fn submit(&self, sub: FrameSubmission, now: Instant) -> (FrameVerdict, bool) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        Self::touch(&mut inner, sub.worker, now);
        let current =
            Self::owned_shard(&inner, sub.worker) == Some(sub.shard) && !inner.aborted;
        if sub.shard >= self.spec.shard_count || sub.round >= self.spec.rounds {
            inner.metrics.frames_rejected += 1;
            return (FrameVerdict::Rejected, current);
        }
        if let Some(&(lo, hi)) = self.spec.probe_ranges.get(sub.shard as usize) {
            let stray = sub
                .store
                .iter()
                .any(|s| s.probe.0 < lo || s.probe.0 >= hi);
            if stray {
                inner.metrics.frames_rejected += 1;
                return (FrameVerdict::Rejected, current);
            }
        }
        let digest = Self::frame_digest(&sub);
        let shard = &mut inner.shards[sub.shard as usize];
        if let Some(&seen) = shard.digests.get(&sub.round) {
            if seen == digest {
                inner.metrics.duplicate_frames_dropped += 1;
                return (FrameVerdict::Duplicate, current);
            }
            inner.metrics.frames_rejected += 1;
            return (FrameVerdict::Rejected, current);
        }
        if shard.lost.contains(&sub.round) {
            // The merge already wrote this round off; late truth cannot
            // be spliced back in without breaking determinism.
            inner.metrics.frames_rejected += 1;
            return (FrameVerdict::Rejected, current);
        }
        shard.digests.insert(sub.round, digest);
        shard.frames.insert(
            sub.round,
            RoundFrame {
                gross: sub.gross,
                refund: sub.refund,
                store: sub.store,
            },
        );
        Self::advance(self.spec.rounds, shard);
        if current {
            shard.deadline = Some(now + self.spec.round_timeout);
            shard.retries = 0;
            shard.backoff = self.spec.retry_base;
        }
        inner.metrics.frames_accepted += 1;
        inner.last_accept = Some(now);
        drop(inner);
        self.ready.notify_all();
        (FrameVerdict::Accepted, current)
    }

    /// Failure detection: declares silent workers dead (freeing their
    /// shards) and re-arms or strips blown round deadlines. Called from
    /// the coordinator's control loop; cheap enough for every tick.
    pub fn sweep(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        let timeout = self.spec.heartbeat_timeout;
        let mut dead: Vec<u64> = Vec::new();
        for (&id, w) in inner.workers.iter() {
            if w.live && now.duration_since(w.last_seen) >= timeout {
                dead.push(id);
            }
        }
        for id in dead {
            if let Some(w) = inner.workers.get_mut(&id) {
                w.live = false;
            }
            inner.metrics.workers_live = inner.metrics.workers_live.saturating_sub(1);
            inner.metrics.heartbeats_missed += 1;
            for s in inner.shards.iter_mut() {
                if s.assigned == Some(id) {
                    s.assigned = None;
                    s.deadline = None;
                }
            }
        }
        let rounds = self.spec.rounds;
        let (base, cap, max_retries) = (
            self.spec.retry_base,
            self.spec.retry_cap,
            self.spec.max_round_retries,
        );
        let mut rng = inner.rng;
        let mut retried = 0u64;
        for s in inner.shards.iter_mut() {
            if s.assigned.is_none() || s.next_needed >= rounds {
                continue;
            }
            let Some(deadline) = s.deadline else { continue };
            if now < deadline {
                continue;
            }
            retried += 1;
            s.retries += 1;
            if s.retries > max_retries {
                // The worker may still heartbeat, but it is wedged on
                // this round: fence it so a survivor takes over.
                s.assigned = None;
                s.deadline = None;
            } else {
                s.backoff = decorrelated(&mut rng, s.backoff, base, cap);
                s.deadline = Some(now + s.backoff);
            }
        }
        inner.rng = rng;
        inner.metrics.rounds_retried += retried;
    }

    /// Whether every shard has delivered (or written off) `round`.
    pub fn round_ready(&self, round: u32) -> bool {
        let inner = self.inner.lock().expect("work queue poisoned");
        inner
            .shards
            .iter()
            .all(|s| s.digests.contains_key(&round) || s.lost.contains(&round))
    }

    /// Blocks until `round` is ready, the campaign aborts, or `timeout`
    /// elapses — the coordinator's merge loop never waits unbounded.
    pub fn wait_round(&self, round: u32, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("work queue poisoned");
        loop {
            let ready = inner
                .shards
                .iter()
                .all(|s| s.digests.contains_key(&round) || s.lost.contains(&round));
            if ready || inner.aborted {
                return ready;
            }
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                return false;
            };
            let (guard, _) = self
                .ready
                .wait_timeout(inner, left)
                .expect("work queue poisoned");
            inner = guard;
        }
    }

    /// Takes an accepted round out of the queue for merging (`None` if
    /// the round was marked lost).
    pub fn take_round(&self, shard: u32, round: u32) -> Option<RoundFrame> {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        inner.shards.get_mut(shard as usize)?.frames.remove(&round)
    }

    /// Shards that have not yet delivered `round`.
    pub fn missing_for_round(&self, round: u32) -> Vec<u32> {
        let inner = self.inner.lock().expect("work queue poisoned");
        inner
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.digests.contains_key(&round) && !s.lost.contains(&round))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Writes `(shard, round)` off as lost (degraded completion): the
    /// merge substitutes synthesised lost-round samples and any late
    /// real frame is rejected.
    pub fn mark_lost(&self, shard: u32, round: u32) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        let rounds = self.spec.rounds;
        if let Some(s) = inner.shards.get_mut(shard as usize) {
            if s.lost.insert(round) {
                Self::advance(rounds, s);
                inner.metrics.lost_rounds += 1;
            }
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// Marks the campaign complete: workers see `Done` and exit.
    pub fn finish(&self) {
        self.inner.lock().expect("work queue poisoned").finished = true;
        self.ready.notify_all();
    }

    /// Marks the campaign failed: workers see `Abort` and exit.
    pub fn abort(&self) {
        self.inner.lock().expect("work queue poisoned").aborted = true;
        self.ready.notify_all();
    }

    /// Whether [`WorkQueue::abort`] was called.
    pub fn aborted(&self) -> bool {
        self.inner.lock().expect("work queue poisoned").aborted
    }

    /// Workers currently considered live.
    pub fn live_workers(&self) -> u64 {
        self.inner.lock().expect("work queue poisoned").metrics.workers_live
    }

    /// When the queue last accepted a frame (grace clock for the
    /// degraded-completion decision).
    pub fn last_accept(&self) -> Option<Instant> {
        self.inner.lock().expect("work queue poisoned").last_accept
    }

    /// Point-in-time copy of the robustness counters.
    pub fn metrics(&self) -> WorkMetrics {
        self.inner.lock().expect("work queue poisoned").metrics
    }

    // --- Stream transport accounting ---------------------------------

    /// Records a work-plane stream HELLO (and whether it was a
    /// reconnect).
    pub fn note_stream(&self, reconnect: bool) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        inner.metrics.streams_opened += 1;
        if reconnect {
            inner.metrics.stream_reconnects += 1;
        }
    }

    /// Raises the frames-in-flight gauge by `n` (frames decoded off a
    /// stream, verdicts not yet on the wire).
    pub fn note_frames_inflight(&self, n: u64) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        inner.metrics.frames_in_flight += n;
        inner.metrics.frames_in_flight_peak = inner
            .metrics
            .frames_in_flight_peak
            .max(inner.metrics.frames_in_flight);
    }

    /// Lowers the frames-in-flight gauge by `n` (verdicts flushed to
    /// the socket, or the stream died with verdicts queued).
    pub fn release_frames_inflight(&self, n: u64) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        inner.metrics.frames_in_flight = inner.metrics.frames_in_flight.saturating_sub(n);
    }

    /// Counts one control reply pushed down a stream unprompted.
    pub fn note_reply_pushed(&self) {
        self.inner.lock().expect("work queue poisoned").metrics.replies_pushed += 1;
    }

    /// Buckets one frame-arrival → verdict-on-the-wire latency.
    pub fn note_verdict_latency(&self, elapsed: Duration) {
        let mut inner = self.inner.lock().expect("work queue poisoned");
        let m = &mut inner.metrics;
        if elapsed <= Duration::from_millis(1) {
            m.verdicts_le_1ms += 1;
        } else if elapsed <= Duration::from_millis(10) {
            m.verdicts_le_10ms += 1;
        } else if elapsed <= Duration::from_millis(100) {
            m.verdicts_le_100ms += 1;
        } else {
            m.verdicts_gt_100ms += 1;
        }
    }

    /// Read-only push check for a stream connection: `Some(reply)` when
    /// the coordinator has news worth pushing — a terminal state, or a
    /// fence (the shard this worker was last assigned moved on without
    /// it while work remains). Never touches liveness: a dead worker's
    /// silence must still be observable by [`WorkQueue::sweep`].
    pub fn push_status(&self, worker: u64, assigned: Option<u32>) -> Option<WorkReply> {
        let inner = self.inner.lock().expect("work queue poisoned");
        if inner.aborted {
            return Some(WorkReply::Abort);
        }
        if inner.finished || self.all_done(&inner) {
            return Some(WorkReply::Done);
        }
        let shard = assigned?;
        let s = inner.shards.get(shard as usize)?;
        if s.assigned != Some(worker) && s.next_needed < self.spec.rounds {
            return Some(WorkReply::Idle);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::RttSample;
    use shears_netsim::SimTime;

    fn sample(probe: u32, at_hours: u64) -> RttSample {
        RttSample {
            probe: shears_atlas::ProbeId(probe),
            region: 3,
            at: SimTime::from_hours(at_hours),
            min_ms: 10.0,
            avg_ms: 12.0,
            sent: 3,
            received: 3,
        }
    }

    fn store_of(probes: &[u32]) -> ResultStore {
        let mut s = ResultStore::new();
        for &p in probes {
            s.push(sample(p, 1));
        }
        s
    }

    fn sub(worker: u64, shard: u32, round: u32, probes: &[u32]) -> FrameSubmission {
        FrameSubmission {
            worker,
            shard,
            round,
            gross: 30,
            refund: 0,
            store: store_of(probes),
        }
    }

    #[test]
    fn codec_round_trips_every_message() {
        assert_eq!(decode_hello(&encode_hello()).unwrap(), WORK_PROTO_VERSION);

        let (w, hb, hdr) =
            decode_welcome(&encode_welcome(7, 250, b"header-bytes")).unwrap();
        assert_eq!((w, hb, hdr.as_slice()), (7, 250, b"header-bytes".as_slice()));

        assert_eq!(decode_poll(&encode_poll(42)).unwrap(), 42);

        for reply in [
            WorkReply::Idle,
            WorkReply::Done,
            WorkReply::Abort,
            WorkReply::Assigned(WorkAssignment {
                shard: 2,
                shard_count: 4,
                start_round: 1,
                rounds: 6,
            }),
        ] {
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }

        let wire = encode_frame_submit(9, 1, 3, 120, 30, &store_of(&[4, 5]));
        let got = decode_frame_submit(&wire).unwrap();
        assert_eq!((got.worker, got.shard, got.round), (9, 1, 3));
        assert_eq!((got.gross, got.refund), (120, 30));
        assert_eq!(got.store.len(), 2);

        for v in [FrameVerdict::Accepted, FrameVerdict::Duplicate, FrameVerdict::Rejected] {
            assert_eq!(decode_verdict(&encode_verdict(v, true)).unwrap(), (v, true));
            assert_eq!(decode_verdict(&encode_verdict(v, false)).unwrap(), (v, false));
        }

        // Corrupt frames are refused, never panic.
        let mut bad = encode_poll(1);
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(decode_poll(&bad).is_err());
        assert!(decode_reply(b"short").is_err());
    }

    #[test]
    fn shards_are_assigned_lowest_first_and_restated() {
        let q = WorkQueue::new(WorkSpec::quick(2, 2));
        let t = Instant::now();
        let (a, b) = (q.register(t), q.register(t));
        assert_eq!(
            q.poll(a, t),
            WorkReply::Assigned(WorkAssignment { shard: 0, shard_count: 2, start_round: 0, rounds: 2 })
        );
        assert_eq!(
            q.poll(b, t),
            WorkReply::Assigned(WorkAssignment { shard: 1, shard_count: 2, start_round: 0, rounds: 2 })
        );
        // Re-poll restates, never double-assigns.
        assert!(matches!(q.poll(a, t), WorkReply::Assigned(x) if x.shard == 0));
        let c = q.register(t);
        assert_eq!(q.poll(c, t), WorkReply::Idle);
    }

    #[test]
    fn duplicate_frames_are_dropped_and_divergent_ones_rejected() {
        let q = WorkQueue::new(WorkSpec::quick(2, 1));
        let t = Instant::now();
        let w = q.register(t);
        q.poll(w, t);
        let (v, current) = q.submit(sub(w, 0, 0, &[1, 2]), t);
        assert_eq!((v, current), (FrameVerdict::Accepted, true));
        // Bit-identical resubmission (WAL replay): dropped, counted.
        let (v, _) = q.submit(sub(w, 0, 0, &[1, 2]), t);
        assert_eq!(v, FrameVerdict::Duplicate);
        // Same round, different content: loud rejection.
        let (v, _) = q.submit(sub(w, 0, 0, &[1, 3]), t);
        assert_eq!(v, FrameVerdict::Rejected);
        let m = q.metrics();
        assert_eq!(m.frames_accepted, 1);
        assert_eq!(m.duplicate_frames_dropped, 1);
        assert_eq!(m.frames_rejected, 1);
        // A different worker submitting the identical round also dedups
        // (digest excludes the worker id).
        let w2 = q.register(t);
        let (v, current) = q.submit(sub(w2, 0, 0, &[1, 2]), t);
        assert_eq!((v, current), (FrameVerdict::Duplicate, false));
    }

    #[test]
    fn dead_workers_free_their_shards_for_survivors() {
        let spec = WorkSpec::quick(3, 1);
        let hb = spec.heartbeat_timeout;
        let q = WorkQueue::new(spec);
        let t = Instant::now();
        let a = q.register(t);
        q.poll(a, t);
        q.submit(sub(a, 0, 0, &[1]), t);
        assert_eq!(q.live_workers(), 1);

        // `a` goes silent past the heartbeat deadline.
        let later = t + hb + Duration::from_millis(1);
        q.sweep(later);
        assert_eq!(q.live_workers(), 0);
        let m = q.metrics();
        assert_eq!(m.heartbeats_missed, 1);

        // A survivor picks the shard up from the first unaccepted round.
        let b = q.register(later);
        match q.poll(b, later) {
            WorkReply::Assigned(x) => {
                assert_eq!(x.shard, 0);
                assert_eq!(x.start_round, 1, "resumes after a's accepted round");
            }
            other => panic!("expected assignment, got {other:?}"),
        }
        assert_eq!(q.metrics().shards_reassigned, 1);
    }

    #[test]
    fn blown_round_deadlines_back_off_then_fence() {
        let spec = WorkSpec::quick(2, 1);
        let (rt, max) = (spec.round_timeout, spec.max_round_retries);
        let q = WorkQueue::new(spec);
        let t = Instant::now();
        let a = q.register(t);
        q.poll(a, t);
        // Keep `a` heartbeating but never delivering: deadline misses
        // accumulate with backoff until the assignment is stripped.
        let mut now = t;
        for _ in 0..=max {
            now += rt + Duration::from_secs(1);
            q.heartbeat(a, now);
            q.sweep(now);
        }
        assert_eq!(q.metrics().rounds_retried, u64::from(max) + 1);
        // `a` is fenced: heartbeat says Idle even though it is live.
        assert_eq!(q.heartbeat(a, now), WorkReply::Idle);
        let b = q.register(now);
        assert!(matches!(q.poll(b, now), WorkReply::Assigned(x) if x.shard == 0));
        // `a`'s stale in-flight round still merges (then dedups b's).
        let (v, current) = q.submit(sub(a, 0, 0, &[1]), now);
        assert_eq!((v, current), (FrameVerdict::Accepted, false));
        let (v, _) = q.submit(sub(b, 0, 0, &[1]), now);
        assert_eq!(v, FrameVerdict::Duplicate);
    }

    #[test]
    fn merge_hand_off_and_lost_rounds() {
        let q = WorkQueue::new(WorkSpec::quick(2, 2));
        let t = Instant::now();
        let w = q.register(t);
        q.poll(w, t);
        assert!(!q.round_ready(0));
        q.submit(sub(w, 0, 0, &[1]), t);
        assert_eq!(q.missing_for_round(0), vec![1]);
        q.mark_lost(1, 0);
        assert!(q.round_ready(0));
        assert!(q.wait_round(0, Duration::from_millis(1)));
        assert!(q.take_round(0, 0).is_some());
        assert!(q.take_round(1, 0).is_none(), "lost round yields no frame");
        // A late real frame for the written-off round is refused.
        let (v, _) = q.submit(sub(w, 1, 0, &[5]), t);
        assert_eq!(v, FrameVerdict::Rejected);
        assert_eq!(q.metrics().lost_rounds, 1);
    }

    #[test]
    fn out_of_range_samples_are_rejected_before_the_merge() {
        let mut spec = WorkSpec::quick(1, 2);
        spec.probe_ranges = vec![(0, 4), (4, 8)];
        let q = WorkQueue::new(spec);
        let t = Instant::now();
        let w = q.register(t);
        q.poll(w, t);
        let (v, _) = q.submit(sub(w, 0, 0, &[2, 5]), t);
        assert_eq!(v, FrameVerdict::Rejected, "probe 5 is outside shard 0");
        let (v, _) = q.submit(sub(w, 0, 0, &[2, 3]), t);
        assert_eq!(v, FrameVerdict::Accepted);
    }

    #[test]
    fn completion_and_abort_are_terminal() {
        let q = WorkQueue::new(WorkSpec::quick(1, 1));
        let t = Instant::now();
        let w = q.register(t);
        q.poll(w, t);
        q.submit(sub(w, 0, 0, &[1]), t);
        // All rounds accepted: polls turn Done without an explicit
        // finish().
        assert_eq!(q.poll(w, t), WorkReply::Done);

        let q = WorkQueue::new(WorkSpec::quick(1, 1));
        let w = q.register(t);
        q.abort();
        assert_eq!(q.poll(w, t), WorkReply::Abort);
        assert!(!q.wait_round(0, Duration::from_millis(1)));
    }
}
