//! Pipelined binary work-plane transport.
//!
//! PR 9's work plane is chatty: every poll, heartbeat, and round frame
//! is a full HTTP request/response, so shard throughput is bounded by
//! coordinator RTT rather than compute. This module gives the work
//! plane a persistent stream instead: a worker opens one long-lived
//! TCP connection, announces itself with an 8-byte preamble
//! ([`STREAM_PREAMBLE`]) that lets the reactor route it out of HTTP
//! parsing, and then speaks CRC-32-framed [`crate::work`] messages in
//! both directions.
//!
//! The pieces here are deliberately socket-free where possible so the
//! protocol front can be property-tested byte-by-byte:
//!
//! * [`StreamDecoder`] — incremental `[len][crc32][payload]` framing
//!   with a size cap; torn frames are "not yet", corrupt frames are a
//!   typed [`StreamError`], never a panic.
//! * [`WorkStream`] — the coordinator-side connection core: feed it
//!   raw bytes, it decodes messages, drives the [`WorkQueue`], and
//!   appends reply bytes (WELCOME / REPLY / tagged VERDICT) to an
//!   output buffer. The reactor owns the socket; this owns the
//!   protocol. It also decides *pushes*: fence, done, and abort are
//!   written down the stream unprompted instead of waiting for the
//!   next poll.
//! * [`WorkStreamClient`] — the worker-side half: a blocking reader, a
//!   mutex-shared writer, and a transport-level heartbeater thread
//!   that sends an explicit HEARTBEAT only when nothing else has gone
//!   out for a full interval (any frame or poll piggybacks liveness,
//!   server-side, via `WorkQueue::touch`).
//!
//! Pipelining contract: the client may stream many FRAMEs without
//! waiting for verdicts; the server answers each with a verdict tagged
//! `(shard, round)` so out-of-order matching is possible. Crash safety
//! is unchanged — every frame is journaled to the worker's WAL before
//! it enters the window, so "unacked in flight" never means
//! "unjournaled".

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shears_atlas::journal::{frame, read_frame};

use crate::work::{
    self, decode_stream_msg, StreamMsg, WorkQueue, WorkReply, WORK_PROTO_VERSION,
};

/// First bytes of a work-plane stream. The reactor sniffs these to
/// tell a raw work stream from an HTTP request arriving on the same
/// listener; no valid HTTP method shares this prefix.
pub const STREAM_PREAMBLE: [u8; 8] = *b"SHRSWRK1";

/// Ceiling on one stream frame's declared payload length (64 MiB). A
/// frame header claiming more is a protocol violation, not a "wait for
/// more bytes" — without this cap a hostile 4-byte header could pin a
/// connection buffering forever.
pub const MAX_STREAM_FRAME: u32 = 64 << 20;

/// Typed stream-transport failure. Any of these closes the stream;
/// none of them panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// CRC-32 mismatch: the frame arrived complete but corrupt.
    Corrupt,
    /// Frame header declared a payload over [`MAX_STREAM_FRAME`].
    Oversize(u32),
    /// A complete frame's payload violated the message grammar.
    Malformed(&'static str),
    /// A well-formed message arrived that the protocol state forbids
    /// (version mismatch, duplicate HELLO, wrong direction).
    Protocol(&'static str),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Corrupt => write!(f, "stream frame failed crc check"),
            StreamError::Oversize(n) => write!(f, "stream frame claims {n} bytes"),
            StreamError::Malformed(why) => write!(f, "malformed stream message: {why}"),
            StreamError::Protocol(why) => write!(f, "stream protocol violation: {why}"),
        }
    }
}

impl std::error::Error for StreamError {}

fn stream_io(e: StreamError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

// --- Incremental framing ---------------------------------------------

/// Incremental CRC-frame decoder: feed arbitrary byte chunks, take
/// complete payloads out. Reuses the journal wire discipline
/// (`[len: u32][crc32: u32][payload]`) via [`read_frame`].
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    pos: usize,
}

/// Compact the consumed prefix once it outgrows this; below it, the
/// memmove costs more than the slack.
const COMPACT_AT: usize = 64 * 1024;

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether undecoded bytes are buffered (a partial frame, or
    /// complete frames not yet taken).
    pub fn has_pending(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Takes the next complete payload, `Ok(None)` if the buffer holds
    /// only a torn frame (keep reading), or a typed error on a corrupt
    /// or oversized frame (close the stream).
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, StreamError> {
        if self.buf.len() - self.pos >= 4 {
            let declared = u32::from_le_bytes(
                self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"),
            );
            if declared > MAX_STREAM_FRAME {
                return Err(StreamError::Oversize(declared));
            }
        }
        match read_frame(&self.buf, self.pos) {
            Ok(Some((payload, next))) => {
                let out = payload.to_vec();
                self.pos = next;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                } else if self.pos >= COMPACT_AT {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(out))
            }
            Ok(None) => Ok(None),
            Err(_) => Err(StreamError::Corrupt),
        }
    }
}

// --- Coordinator-side stream core ------------------------------------

/// Protocol state for one server-side work stream. Socket-free: the
/// reactor feeds bytes in and writes the output buffer out; everything
/// between is deterministic and unit-testable.
#[derive(Debug)]
pub struct WorkStream {
    decoder: StreamDecoder,
    worker: Option<u64>,
    /// Shard of the last assignment sent down this stream — the anchor
    /// for fence detection in [`WorkStream::push_check`].
    last_assigned: Option<u32>,
    /// Done/Abort already pushed; nothing further to say.
    terminal_pushed: bool,
    /// Fence (unsolicited Idle) already pushed for the current
    /// assignment; cleared when a new assignment goes out.
    fence_pushed: bool,
    /// Arrival instants of frames whose verdicts sit in the unsent
    /// output batch (for the in-flight gauge + latency histogram).
    pending: Vec<Instant>,
}

impl Default for WorkStream {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkStream {
    /// A fresh stream awaiting HELLO.
    pub fn new() -> Self {
        Self {
            decoder: StreamDecoder::new(),
            worker: None,
            last_assigned: None,
            terminal_pushed: false,
            fence_pushed: false,
            pending: Vec::new(),
        }
    }

    /// Appends raw socket bytes (decoded on the next [`Self::drive`]).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.decoder.feed(bytes);
    }

    /// Whether undecoded input is buffered.
    pub fn has_pending_input(&self) -> bool {
        self.decoder.has_pending()
    }

    fn expect_worker(&self, worker: u64) -> Result<(), StreamError> {
        match self.worker {
            Some(id) if id == worker => Ok(()),
            Some(_) => Err(StreamError::Protocol("message for a different worker")),
            None => Err(StreamError::Protocol("message before hello")),
        }
    }

    /// Decodes and handles every complete buffered message, appending
    /// reply bytes to `out`, then runs a push check. An error means
    /// the stream is unrecoverable and must be closed.
    pub fn drive(
        &mut self,
        queue: &WorkQueue,
        now: Instant,
        out: &mut Vec<u8>,
    ) -> Result<(), StreamError> {
        while let Some(payload) = self.decoder.next_payload()? {
            let msg = decode_stream_msg(&payload).map_err(StreamError::Malformed)?;
            self.handle(queue, msg, now, out)?;
        }
        self.push_check(queue, now, out);
        Ok(())
    }

    fn handle(
        &mut self,
        queue: &WorkQueue,
        msg: StreamMsg,
        now: Instant,
        out: &mut Vec<u8>,
    ) -> Result<(), StreamError> {
        match msg {
            StreamMsg::Hello { version, reconnect } => {
                if version != WORK_PROTO_VERSION {
                    return Err(StreamError::Protocol("work protocol version mismatch"));
                }
                if self.worker.is_some() {
                    return Err(StreamError::Protocol("duplicate hello"));
                }
                let id = queue.register(now);
                queue.note_stream(reconnect);
                self.worker = Some(id);
                let spec = queue.spec();
                out.extend_from_slice(&frame(&work::welcome_payload(
                    id,
                    spec.heartbeat_interval.as_millis() as u64,
                    &spec.header_wire,
                )));
            }
            StreamMsg::Poll { worker } => {
                self.expect_worker(worker)?;
                let reply = queue.poll(worker, now);
                match reply {
                    WorkReply::Assigned(a) => {
                        self.last_assigned = Some(a.shard);
                        self.fence_pushed = false;
                    }
                    WorkReply::Idle => self.last_assigned = None,
                    WorkReply::Done | WorkReply::Abort => self.terminal_pushed = true,
                }
                out.extend_from_slice(&frame(&work::reply_payload(&reply)));
            }
            StreamMsg::Heartbeat { worker } => {
                self.expect_worker(worker)?;
                // Liveness only; state changes reach the worker via
                // the push check, not a per-heartbeat reply.
                let _ = queue.heartbeat(worker, now);
            }
            StreamMsg::Frame(sub) => {
                self.expect_worker(sub.worker)?;
                let (shard, round) = (sub.shard, sub.round);
                queue.note_frames_inflight(1);
                self.pending.push(now);
                let (verdict, current) = queue.submit(*sub, now);
                out.extend_from_slice(&frame(&work::verdict_payload(
                    shard, round, verdict, current,
                )));
            }
            StreamMsg::Welcome { .. } | StreamMsg::Reply(_) | StreamMsg::Verdict { .. } => {
                return Err(StreamError::Protocol("server message from a worker"));
            }
        }
        Ok(())
    }

    /// Writes an unsolicited control reply when the coordinator has
    /// news: fence (the worker's shard moved on without it), done, or
    /// abort. Runs after every inbound batch — a worker's heartbeats
    /// guarantee at least one check per interval even mid-round.
    pub fn push_check(&mut self, queue: &WorkQueue, _now: Instant, out: &mut Vec<u8>) {
        let Some(worker) = self.worker else { return };
        if self.terminal_pushed {
            return;
        }
        let Some(reply) = queue.push_status(worker, self.last_assigned) else {
            return;
        };
        match reply {
            WorkReply::Done | WorkReply::Abort => self.terminal_pushed = true,
            WorkReply::Idle => {
                if self.fence_pushed {
                    return;
                }
                self.fence_pushed = true;
            }
            // push_status never invents assignments (that would race a
            // concurrent poll into a double grant).
            WorkReply::Assigned(_) => return,
        }
        out.extend_from_slice(&frame(&work::reply_payload(&reply)));
        queue.note_reply_pushed();
    }

    /// The reactor drained the output batch to the socket: bucket the
    /// verdict latencies and release the in-flight gauge.
    pub fn note_flushed(&mut self, queue: &WorkQueue, now: Instant) {
        if self.pending.is_empty() {
            return;
        }
        let n = self.pending.len() as u64;
        for t in self.pending.drain(..) {
            queue.note_verdict_latency(now.duration_since(t));
        }
        queue.release_frames_inflight(n);
    }

    /// The stream is closing: release gauge entries for any verdicts
    /// that never reached the wire.
    pub fn on_close(&mut self, queue: &WorkQueue) {
        if !self.pending.is_empty() {
            queue.release_frames_inflight(self.pending.len() as u64);
            self.pending.clear();
        }
    }
}

// --- Worker-side client ----------------------------------------------

/// Writer half shared between the caller and the heartbeater thread.
/// All sends go through one mutex so frames interleave at message
/// granularity, never mid-frame.
#[derive(Debug)]
struct SharedWriter {
    stream: Mutex<TcpStream>,
    /// Milliseconds since `epoch` of the last successful send — the
    /// piggyback clock: the heartbeater only speaks when this goes
    /// stale.
    last_send_ms: AtomicU64,
    epoch: Instant,
    paused: AtomicBool,
    stop: AtomicBool,
}

impl SharedWriter {
    fn send(&self, payload: &[u8]) -> io::Result<()> {
        let wire = frame(payload);
        let mut s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        s.write_all(&wire)?;
        self.last_send_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// Worker-side end of a work stream: blocking reads with a deadline,
/// mutex-shared writes, and a transport-level heartbeater.
#[derive(Debug)]
pub struct WorkStreamClient {
    reader: TcpStream,
    writer: Arc<SharedWriter>,
    decoder: StreamDecoder,
    timeout: Duration,
    hb: Option<JoinHandle<()>>,
}

impl WorkStreamClient {
    /// Opens a stream, sends the preamble + HELLO, and waits for
    /// WELCOME. Returns `(client, worker_id, heartbeat_ms, header)`.
    pub fn connect(
        addr: SocketAddr,
        timeout: Duration,
        reconnect: bool,
    ) -> io::Result<(Self, u64, u64, Vec<u8>)> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = stream.try_clone()?;
        let writer = Arc::new(SharedWriter {
            stream: Mutex::new(stream),
            last_send_ms: AtomicU64::new(0),
            epoch: Instant::now(),
            paused: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let mut client = Self {
            reader,
            writer,
            decoder: StreamDecoder::new(),
            timeout,
            hb: None,
        };
        let mut first = Vec::with_capacity(32);
        first.extend_from_slice(&STREAM_PREAMBLE);
        first.extend_from_slice(&frame(&work::stream_hello_payload(reconnect)));
        {
            let mut s = client
                .writer
                .stream
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            s.write_all(&first)?;
        }
        let deadline = Instant::now() + timeout;
        match client.recv(deadline)? {
            StreamMsg::Welcome {
                worker,
                heartbeat_ms,
                header,
            } => Ok((client, worker, heartbeat_ms, header)),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected welcome on work stream",
            )),
        }
    }

    /// The per-wait timeout this client was built with.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Spawns the heartbeater: every quarter-interval it checks the
    /// piggyback clock and sends an explicit HEARTBEAT only if nothing
    /// has gone out for a full interval. Stops (and is joined) on drop.
    pub fn start_heartbeats(&mut self, worker: u64, interval: Duration) {
        let shared = Arc::clone(&self.writer);
        let payload = work::heartbeat_payload(worker);
        let tick = (interval / 4).max(Duration::from_millis(1));
        let interval_ms = interval.as_millis() as u64;
        self.hb = Some(std::thread::spawn(move || loop {
            std::thread::sleep(tick);
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            if shared.paused.load(Ordering::Relaxed) {
                continue;
            }
            let now_ms = shared.epoch.elapsed().as_millis() as u64;
            let idle = now_ms.saturating_sub(shared.last_send_ms.load(Ordering::Relaxed));
            if idle >= interval_ms && shared.send(&payload).is_err() {
                // The main thread will observe the broken stream on
                // its own next operation; stop spamming.
                return;
            }
        }));
    }

    /// Pauses (or resumes) the heartbeater — chaos harness hook for
    /// simulating a fully wedged worker, which must go silent.
    pub fn pause_heartbeats(&self, paused: bool) {
        self.writer.paused.store(paused, Ordering::Relaxed);
    }

    /// Sends one message payload (framed on the way out).
    pub fn send(&self, payload: &[u8]) -> io::Result<()> {
        self.writer.send(payload)
    }

    /// Takes an already-buffered message without touching the socket
    /// (the "free" half of pipelined receive).
    pub fn take_buffered(&mut self) -> io::Result<Option<StreamMsg>> {
        match self.decoder.next_payload() {
            Ok(Some(p)) => decode_stream_msg(&p)
                .map(Some)
                .map_err(|why| stream_io(StreamError::Malformed(why))),
            Ok(None) => Ok(None),
            Err(e) => Err(stream_io(e)),
        }
    }

    /// Blocking receive: returns the next message or times out at
    /// `deadline`. Reads in short slices so a stuck peer cannot pin
    /// the thread past the deadline.
    pub fn recv(&mut self, deadline: Instant) -> io::Result<StreamMsg> {
        if let Some(m) = self.take_buffered()? {
            return Ok(m);
        }
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "work stream receive timed out",
                ));
            };
            self.reader
                .set_read_timeout(Some(left.min(Duration::from_millis(50))))?;
            match self.reader.read(&mut scratch) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "work stream closed by coordinator",
                    ))
                }
                Ok(n) => {
                    self.decoder.feed(&scratch[..n]);
                    if let Some(m) = self.take_buffered()? {
                        return Ok(m);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for WorkStreamClient {
    fn drop(&mut self) {
        self.writer.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.hb.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{FrameSubmission, FrameVerdict, WorkSpec};
    use shears_atlas::ResultStore;

    fn sub(worker: u64, shard: u32, round: u32) -> FrameSubmission {
        FrameSubmission {
            worker,
            shard,
            round,
            gross: 10,
            refund: 0,
            store: ResultStore::new(),
        }
    }

    fn framed(payload: Vec<u8>) -> Vec<u8> {
        frame(&payload)
    }

    #[test]
    fn decoder_is_partition_independent() {
        let mut wire = Vec::new();
        for i in 0..5u64 {
            wire.extend_from_slice(&framed(work::poll_payload(i)));
        }
        // Whole-buffer feed.
        let mut whole = StreamDecoder::new();
        whole.feed(&wire);
        let mut a = Vec::new();
        while let Some(p) = whole.next_payload().unwrap() {
            a.push(p);
        }
        // Byte-at-a-time feed.
        let mut drip = StreamDecoder::new();
        let mut b = Vec::new();
        for &byte in &wire {
            drip.feed(&[byte]);
            while let Some(p) = drip.next_payload().unwrap() {
                b.push(p);
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!drip.has_pending());
    }

    #[test]
    fn decoder_rejects_corrupt_and_oversize_frames() {
        let mut wire = framed(work::poll_payload(1));
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut d = StreamDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_payload(), Err(StreamError::Corrupt));

        let mut d = StreamDecoder::new();
        d.feed(&(MAX_STREAM_FRAME + 1).to_le_bytes());
        assert!(matches!(d.next_payload(), Err(StreamError::Oversize(_))));

        // A torn frame is not an error — just not ready.
        let wire = framed(work::poll_payload(2));
        let mut d = StreamDecoder::new();
        d.feed(&wire[..wire.len() - 1]);
        assert_eq!(d.next_payload(), Ok(None));
        assert!(d.has_pending());
        d.feed(&wire[wire.len() - 1..]);
        assert!(d.next_payload().unwrap().is_some());
    }

    /// Runs a payload sequence through a server-side stream and
    /// returns the decoded reply messages.
    fn drive_payloads(
        ws: &mut WorkStream,
        queue: &WorkQueue,
        payloads: &[Vec<u8>],
    ) -> Vec<StreamMsg> {
        let mut wire = Vec::new();
        for p in payloads {
            wire.extend_from_slice(&framed(p.clone()));
        }
        ws.feed(&wire);
        let mut out = Vec::new();
        ws.drive(queue, Instant::now(), &mut out).unwrap();
        ws.note_flushed(queue, Instant::now());
        let mut d = StreamDecoder::new();
        d.feed(&out);
        let mut msgs = Vec::new();
        while let Some(p) = d.next_payload().unwrap() {
            msgs.push(decode_stream_msg(&p).unwrap());
        }
        msgs
    }

    #[test]
    fn stream_core_handshakes_assigns_and_acks_a_frame_burst() {
        let queue = WorkQueue::new(WorkSpec::quick(4, 1));
        let mut ws = WorkStream::new();

        let replies = drive_payloads(&mut ws, &queue, &[work::stream_hello_payload(false)]);
        let worker = match replies.as_slice() {
            [StreamMsg::Welcome { worker, .. }] => *worker,
            other => panic!("expected welcome, got {other:?}"),
        };
        assert_eq!(queue.metrics().streams_opened, 1);

        let replies = drive_payloads(&mut ws, &queue, &[work::poll_payload(worker)]);
        assert!(
            matches!(replies.as_slice(), [StreamMsg::Reply(WorkReply::Assigned(a))] if a.shard == 0)
        );

        // A pipelined burst of all four rounds: four tagged verdicts
        // come back, in order here, matchable out of order in general.
        let burst: Vec<Vec<u8>> = (0..4)
            .map(|r| {
                work::frame_submit_payload(worker, 0, r, 10, 0, &ResultStore::new())
            })
            .collect();
        let replies = drive_payloads(&mut ws, &queue, &burst);
        // Four tagged verdicts — plus the campaign finishing on the
        // last frame, which the stream pushes as Done unprompted.
        assert_eq!(replies.len(), 5);
        assert!(matches!(replies[4], StreamMsg::Reply(WorkReply::Done)));
        for (i, msg) in replies[..4].iter().enumerate() {
            match msg {
                StreamMsg::Verdict {
                    shard,
                    round,
                    verdict,
                    current,
                } => {
                    assert_eq!((*shard, *round), (0, i as u32));
                    assert_eq!(*verdict, FrameVerdict::Accepted);
                    // Ownership is judged at submit time, before the
                    // merge advances — so even the shard-completing
                    // round acks as current.
                    assert!(*current, "round {i}");
                }
                other => panic!("expected verdict, got {other:?}"),
            }
        }
        let m = queue.metrics();
        assert_eq!(m.frames_accepted, 4);
        assert_eq!(m.frames_in_flight, 0, "gauge released after flush");
        assert_eq!(m.frames_in_flight_peak, 4);
        let verdicts =
            m.verdicts_le_1ms + m.verdicts_le_10ms + m.verdicts_le_100ms + m.verdicts_gt_100ms;
        assert_eq!(verdicts, 4);
    }

    #[test]
    fn stream_core_pushes_fence_and_terminal_states_once() {
        let queue = WorkQueue::new(WorkSpec::quick(2, 1));
        let mut ws = WorkStream::new();
        let worker = match drive_payloads(&mut ws, &queue, &[work::stream_hello_payload(false)])
            .as_slice()
        {
            [StreamMsg::Welcome { worker, .. }] => *worker,
            other => panic!("expected welcome, got {other:?}"),
        };
        drive_payloads(&mut ws, &queue, &[work::poll_payload(worker)]);

        // Another worker takes the shard over (fencing this one).
        let rival = queue.register(Instant::now());
        {
            // Steal the assignment the way sweep() would: silence +
            // reassignment. Simulate by marking the shard free first.
            let spec_timeout = queue.spec().heartbeat_timeout;
            queue.sweep(Instant::now() + spec_timeout + Duration::from_millis(1));
            assert!(matches!(
                queue.poll(rival, Instant::now()),
                WorkReply::Assigned(_)
            ));
        }
        // A heartbeat-triggered drive now pushes exactly one fence.
        let replies = drive_payloads(&mut ws, &queue, &[work::heartbeat_payload(worker)]);
        assert!(matches!(
            replies.as_slice(),
            [StreamMsg::Reply(WorkReply::Idle)]
        ));
        let replies = drive_payloads(&mut ws, &queue, &[work::heartbeat_payload(worker)]);
        assert!(replies.is_empty(), "fence is pushed once, not repeated");
        assert_eq!(queue.metrics().replies_pushed, 1);

        // Abort pushes a terminal exactly once.
        queue.abort();
        let replies = drive_payloads(&mut ws, &queue, &[work::heartbeat_payload(worker)]);
        assert!(matches!(
            replies.as_slice(),
            [StreamMsg::Reply(WorkReply::Abort)]
        ));
        let replies = drive_payloads(&mut ws, &queue, &[work::heartbeat_payload(worker)]);
        assert!(replies.is_empty());
        assert_eq!(queue.metrics().replies_pushed, 2);
    }

    #[test]
    fn stream_core_closes_on_protocol_violations() {
        // Frame before hello.
        let queue = WorkQueue::new(WorkSpec::quick(1, 1));
        let mut ws = WorkStream::new();
        ws.feed(&framed(work::poll_payload(1)));
        let mut out = Vec::new();
        assert!(matches!(
            ws.drive(&queue, Instant::now(), &mut out),
            Err(StreamError::Protocol(_))
        ));

        // Version mismatch.
        let mut ws = WorkStream::new();
        let mut hello = work::stream_hello_payload(false);
        hello[1] ^= 0xFF;
        ws.feed(&framed(hello));
        let mut out = Vec::new();
        assert!(matches!(
            ws.drive(&queue, Instant::now(), &mut out),
            Err(StreamError::Protocol(_))
        ));

        // Corrupt frame mid-stream surfaces as Corrupt, not a panic,
        // and the gauge is released on close.
        let mut ws = WorkStream::new();
        ws.feed(&framed(work::stream_hello_payload(true)));
        let mut out = Vec::new();
        ws.drive(&queue, Instant::now(), &mut out).unwrap();
        assert_eq!(queue.metrics().stream_reconnects, 1);
        let mut bad = framed(work::poll_payload(1));
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        ws.feed(&bad);
        let mut out = Vec::new();
        assert_eq!(
            ws.drive(&queue, Instant::now(), &mut out),
            Err(StreamError::Corrupt)
        );
        ws.on_close(&queue);
        assert_eq!(queue.metrics().frames_in_flight, 0);
    }

    #[test]
    fn duplicate_submissions_still_dedup_through_the_stream() {
        let queue = WorkQueue::new(WorkSpec::quick(2, 1));
        let mut ws = WorkStream::new();
        let worker = match drive_payloads(&mut ws, &queue, &[work::stream_hello_payload(false)])
            .as_slice()
        {
            [StreamMsg::Welcome { worker, .. }] => *worker,
            other => panic!("expected welcome, got {other:?}"),
        };
        drive_payloads(&mut ws, &queue, &[work::poll_payload(worker)]);
        let s = sub(worker, 0, 0);
        let payload =
            work::frame_submit_payload(s.worker, s.shard, s.round, s.gross, s.refund, &s.store);
        let replies = drive_payloads(&mut ws, &queue, &[payload.clone(), payload]);
        assert_eq!(replies.len(), 2);
        assert!(matches!(
            replies[0],
            StreamMsg::Verdict {
                verdict: FrameVerdict::Accepted,
                ..
            }
        ));
        assert!(matches!(
            replies[1],
            StreamMsg::Verdict {
                verdict: FrameVerdict::Duplicate,
                ..
            }
        ));
    }
}
