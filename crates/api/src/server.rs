//! The blocking HTTP server.
//!
//! A blocking accept loop feeds accepted connections into a bounded
//! queue drained by a fixed worker pool:
//!
//! * keep-alive (multiple requests per connection),
//! * backpressure: when the queue is full the acceptor answers 503
//!   immediately instead of piling up threads,
//! * per-connection read timeouts so dead peers release their worker,
//! * reused per-connection read/write buffers (one header-line scratch
//!   `String` and one response `BytesMut` per connection lifetime),
//! * clean shutdown: a self-connect wakes the blocking accept call —
//!   no sleep-polling anywhere — and dropping the queue sender drains
//!   the workers,
//! * resilience: handler panics are caught per connection (the pool
//!   never shrinks) and persistent accept errors (fd exhaustion) back
//!   off briefly instead of busy-spinning the acceptor.

use std::io::BufReader;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::BytesMut;

use crate::http::{read_request_buffered, HttpError, Response};
use crate::service::AtlasService;

/// Socket read timeout: a keep-alive connection idle this long is
/// closed.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Worker-pool sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections. Each worker owns one
    /// connection at a time (requests on a connection are sequential
    /// anyway), so this is also the concurrent-connection limit.
    pub workers: usize,
    /// Accepted connections that may queue for a free worker before the
    /// acceptor starts refusing with 503.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // Handlers are short and CPU-bound (the campaign itself runs
        // lock-free), but a worker can sit in a keep-alive read for up
        // to READ_TIMEOUT — so oversubscribe cores, within reason.
        let cores = std::thread::available_parallelism().map_or(8, |n| n.get());
        Self {
            workers: (cores * 2).clamp(4, 64),
            queue_depth: 64,
        }
    }
}

/// A running API server.
pub struct ApiServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Clone of the bound listener, kept to flip it non-blocking at
    /// shutdown so the accept loop cannot re-block after the wake.
    wake_listener: TcpListener,
    service: Arc<AtlasService>,
}

impl ApiServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` with default pool sizing.
    pub fn spawn<A: ToSocketAddrs>(addr: A, service: AtlasService) -> std::io::Result<ApiServer> {
        Self::spawn_with(addr, service, ServerConfig::default())
    }

    /// Binds `addr` and starts serving `service` with explicit pool
    /// sizing.
    pub fn spawn_with<A: ToSocketAddrs>(
        addr: A,
        service: AtlasService,
        config: ServerConfig,
    ) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let wake_listener = listener.try_clone()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(service);

        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.queue_depth.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for i in 0..config.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("shears-api-worker-{i}"))
                .spawn(move || worker_loop(&rx, &service, &stop))?;
        }

        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("shears-api-accept".into())
            .spawn(move || {
                accept_loop(&listener, &conn_tx, &stop2);
            })?;
        Ok(ApiServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            wake_listener,
            service,
        })
    }

    /// The served service (e.g. to call
    /// [`AtlasService::resume_from_disk`] after spawning over a
    /// durability directory).
    pub fn service(&self) -> &AtlasService {
        &self.service
    }

    /// The bound address (resolve the real port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections, joins the accept thread, and
    /// flushes the service's durable state (measurement journal files +
    /// ledger) so a graceful shutdown never loses finished work.
    /// In-flight connections finish their current request.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.halt();
        self.service.flush()
    }

    /// Wakes and joins the accept thread. Workers drain and exit once
    /// the queue sender drops with it; they are not joined, because an
    /// idle keep-alive peer would otherwise hold shutdown hostage for
    /// up to `READ_TIMEOUT`.
    fn halt(&mut self) {
        let Some(t) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Even if the wake connect below cannot land, the next accept
        // returns WouldBlock instead of blocking forever.
        let _ = self.wake_listener.set_nonblocking(true);
        // Kick the accept call that is already blocking.
        let _ = TcpStream::connect_timeout(&wake_addr(self.local_addr), Duration::from_millis(250));
        let _ = t.join();
    }
}

/// Where to self-connect to wake the acceptor: the bound address,
/// with unspecified addresses (0.0.0.0 / ::) mapped to loopback.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.halt();
        // Best-effort flush on implicit drops; `shutdown` reports errors.
        let _ = self.service.flush();
    }
}

fn accept_loop(listener: &TcpListener, conns: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    // The shutdown wake (or a late client): drop it.
                    return;
                }
                match conns.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Overloaded: refuse politely and move on.
                        let mut s = stream;
                        let _ = Response::error(503, "server overloaded").send(&mut s, false);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            // Transient failure (peer reset mid-handshake, fd pressure)
            // or the listener was flipped non-blocking for shutdown.
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent error (e.g. EMFILE fd exhaustion) makes
                // accept() return immediately; back off briefly so the
                // acceptor cannot busy-spin a core while starved.
                if e.kind() != std::io::ErrorKind::WouldBlock {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, service: &AtlasService, stop: &AtomicBool) {
    loop {
        // Hold the receiver lock only for the dequeue, not while
        // serving: idle workers queue on the lock, busy ones don't.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match next {
            Ok(stream) => {
                // Isolate the worker from handler panics: a panic while
                // serving must cost only that connection, never shrink
                // the pool (the service's parking_lot locks release on
                // unwind, so no state is poisoned). Best effort, tell
                // the client before dropping the connection.
                let panic_writer = stream.try_clone().ok();
                let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = serve_connection(stream, service, stop);
                }));
                if served.is_err() {
                    if let Some(mut w) = panic_writer {
                        let _ = Response::error(500, "internal server error").send(&mut w, false);
                    }
                }
            }
            // All senders gone: the server shut down.
            Err(_) => return,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    service: &AtlasService,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Per-connection scratch, reused across keep-alive requests.
    let mut line = String::with_capacity(128);
    let mut out = BytesMut::with_capacity(1024);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request_buffered(&mut reader, &mut line) {
            Ok(req) => {
                let keep_alive = req.keep_alive();
                let resp = service.handle(&req);
                resp.send_buffered(&mut writer, &mut out, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(HttpError::ConnectionClosed) => return Ok(()),
            Err(HttpError::BadRequest(why)) => {
                let _ = Response::error(400, &why).send_buffered(&mut writer, &mut out, false);
                return Ok(());
            }
            Err(HttpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection: close quietly.
                return Ok(());
            }
            Err(HttpError::Io(e)) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Platform, PlatformConfig};
    use std::io::{Read, Write};

    fn spawn_server() -> ApiServer {
        let platform = Platform::build(&PlatformConfig::quick(4));
        ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform)).unwrap()
    }

    fn raw_request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_probes_over_real_sockets() {
        let server = spawn_server();
        let resp = raw_request(
            server.local_addr(),
            "GET /api/v2/probes?limit=3 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("country_code"));
        server.shutdown().unwrap();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = spawn_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            // Read exactly one response: headers + declared body.
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            let mut content_length = 0usize;
            loop {
                line.clear();
                std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            assert!(
                String::from_utf8_lossy(&body).contains("balance"),
                "request {i}"
            );
            // Hand the (now drained) stream back for the next iteration.
            s = reader.into_inner();
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = spawn_server();
        let resp = raw_request(server.local_addr(), "NOTHTTP\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = spawn_server();
        let addr = server.local_addr();
        server.shutdown().unwrap();
        // Either refused outright, or accepted by the OS backlog and
        // never served — both manifest as an error or empty read.
        if let Ok(mut s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
            let _ = s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 16];
            let got = s.read(&mut buf);
            assert!(matches!(got, Ok(0) | Err(_)), "server still serving: {got:?}");
        }
    }

    #[test]
    fn overflow_connections_get_503_not_a_hang() {
        // One worker, one queue slot: the worker parks in a keep-alive
        // read on the first connection, a second waits in the queue, so
        // a third must be refused fast.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig {
                workers: 1,
                queue_depth: 1,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        // Occupy the worker with a keep-alive connection; completing a
        // round-trip proves the worker (not the queue) owns it, so no
        // sleep can race the dequeue.
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 12];
        busy.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"HTTP/1.1 200");
        // Fill the single queue slot, give the acceptor a beat to
        // enqueue it, and the next connection must be refused. The
        // refusal is written on accept, before any request: read
        // without writing, so the acceptor closing the stream cannot
        // reset request bytes still in flight from the client.
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let mut refused = TcpStream::connect(addr).unwrap();
        let mut resp = String::new();
        refused.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        drop(busy);
        server.shutdown().unwrap();
    }

    #[test]
    fn handler_panic_does_not_shrink_the_worker_pool() {
        // One worker: if a panic killed it, the server would stop
        // serving after the first hostile request.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig {
                workers: 1,
                queue_depth: 4,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        for _ in 0..2 {
            let resp = raw_request(
                addr,
                "GET /api/v2/__panic HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            );
            assert!(resp.starts_with("HTTP/1.1 500"), "{resp}");
        }
        let resp = raw_request(
            addr,
            "GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "worker died: {resp}");
        server.shutdown().unwrap();
    }

    #[test]
    fn hostile_percent_escape_cannot_kill_the_server() {
        // `GET /%中` used to panic percent_decode (str slice at a
        // non-char-boundary); with one worker that was a full outage.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig {
                workers: 1,
                queue_depth: 4,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let resp = raw_request(
            addr,
            "GET /%中 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = raw_request(
            addr,
            "GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "worker died: {resp}");
        server.shutdown().unwrap();
    }

    #[test]
    fn parallel_requests_spread_across_workers() {
        let server = spawn_server();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    raw_request(
                        addr,
                        "GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                    )
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        }
        server.shutdown().unwrap();
    }
}
