//! The HTTP server: a readiness-driven reactor (default) with a
//! worker-pool compat engine.
//!
//! Two engines share one [`ApiServer`] surface, selected by
//! [`ServerConfig::mode`]:
//!
//! * [`ServerMode::Reactor`] — the [`crate::reactor`] event loop:
//!   nonblocking sockets multiplexed over a few reactor threads, each
//!   connection an explicit state machine, request handling fanned out
//!   to a bounded compute pool. Idle keep-alive sessions cost a slab
//!   slot, not a thread, so tens of thousands can stay connected; a
//!   configurable idle timeout (deadline wheel) reclaims dead ones.
//! * [`ServerMode::WorkerPool`] — the earlier blocking engine kept as a
//!   compatibility shim: accept loop → bounded queue → fixed workers,
//!   one connection per worker, 503 when the queue is full. Retained so
//!   invariant tests can prove server-architecture independence (and as
//!   the fallback should the reactor regress).
//!
//! Both engines expose [`ServerMetrics`] counters
//! ([`ApiServer::metrics`]): accepted/open connections, requests,
//! 503/400 counts, handler panics, idle-timeout closes, and — the one
//! the scaling claim hangs on — live server threads, maintained by RAII
//! guards on every thread either engine spawns. The 10k-idle-session
//! soak pins `threads_live == reactor_threads + compute_threads`
//! directly from these counters.

use std::io::BufReader;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::BytesMut;

use crate::http::{read_request_buffered, HttpError, Response};
use crate::reactor;
use crate::service::AtlasService;

/// Socket read timeout for the worker-pool engine (its keep-alive
/// idle limit; the reactor uses [`ServerConfig::idle_timeout`]).
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Which serving engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Readiness-driven event loop + bounded compute pool (default).
    Reactor,
    /// The blocking accept→queue→worker-pool engine (compat shim; one
    /// thread per in-flight connection).
    WorkerPool,
}

/// Server sizing and connection policy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine selection.
    pub mode: ServerMode,
    /// Reactor event-loop threads (reactor mode). Each owns a slice of
    /// the connections; reactor 0 also polls the listener.
    pub reactor_threads: usize,
    /// Handler threads. In reactor mode this is the compute pool; in
    /// worker-pool mode, the pool itself (and thus the
    /// concurrent-connection limit).
    pub compute_threads: usize,
    /// Bounded handler queue. Reactor mode: dispatched requests that
    /// may wait for a free compute thread — when full, the reactor
    /// answers 503 and keeps the connection. Worker-pool mode: accepted
    /// connections that may wait for a worker — when full, the acceptor
    /// refuses with 503.
    pub queue_depth: usize,
    /// Close a keep-alive connection idle this long (reactor mode;
    /// enforced by the deadline wheel, so expiry is approximate to
    /// about one wheel tick = `idle_timeout / 16`).
    pub idle_timeout: Duration,
    /// Deadline on an in-flight response: a connection still in
    /// `WritingResponse` this long after the response *started*
    /// draining is closed (reactor mode). Inactivity cannot catch a
    /// peer that reads one byte per interval — every sip refreshes the
    /// idle clock — so slow readers are bounded by this write-start
    /// deadline instead (same wheel, same tick granularity).
    pub write_timeout: Duration,
    /// Admission cap on concurrently open connections (reactor mode):
    /// beyond it, new arrivals get an immediate 503 instead of the
    /// process dying on fd exhaustion.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(8, |n| n.get());
        Self {
            mode: ServerMode::Reactor,
            // The event loop is cheap; connection counts, not core
            // counts, decide how many reactors pay off.
            reactor_threads: (cores / 4).clamp(1, 4),
            // Handlers are short and CPU-bound (campaigns run
            // lock-free) and never block on the network — the reactor
            // owns all socket I/O — so the pool tracks cores instead of
            // oversubscribing them.
            compute_threads: cores.clamp(2, 32),
            queue_depth: 64,
            idle_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            max_connections: 16_384,
        }
    }
}

impl ServerConfig {
    /// Reactor-mode config with explicit thread counts.
    pub fn reactor(reactor_threads: usize, compute_threads: usize, queue_depth: usize) -> Self {
        Self {
            mode: ServerMode::Reactor,
            reactor_threads,
            compute_threads,
            queue_depth,
            ..Self::default()
        }
    }

    /// Worker-pool-mode config, matching the pre-reactor `{workers,
    /// queue_depth}` shape.
    pub fn worker_pool(workers: usize, queue_depth: usize) -> Self {
        Self {
            mode: ServerMode::WorkerPool,
            compute_threads: workers,
            queue_depth,
            ..Self::default()
        }
    }

    /// Returns `self` with the given idle timeout (builder-style).
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Returns `self` with the given connection admission cap.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Returns `self` with the given in-flight write deadline.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }
}

/// Liveness + traffic counters, shared by both engines. All relaxed
/// atomics: they are observability, not synchronisation.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    requests: AtomicU64,
    resp_503: AtomicU64,
    resp_400: AtomicU64,
    handler_panics: AtomicU64,
    idle_closed: AtomicU64,
    write_deadline_closed: AtomicU64,
    threads_live: AtomicU64,
}

impl ServerMetrics {
    pub(crate) fn note_accept(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }
    pub(crate) fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_503(&self) {
        self.resp_503.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_400(&self) {
        self.resp_400.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_handler_panic(&self) {
        self.handler_panics.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_idle_closed(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_write_deadline_closed(&self) {
        self.write_deadline_closed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn connections_open(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections_accepted: self.conns_accepted.load(Ordering::Relaxed),
            connections_open: self.conns_open.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_503: self.resp_503.load(Ordering::Relaxed),
            responses_400: self.resp_400.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            write_deadline_closed: self.write_deadline_closed.load(Ordering::Relaxed),
            threads_live: self.threads_live.load(Ordering::Relaxed),
        }
    }
}

/// A copy of the server's [`ServerMetrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections the listener has accepted (including ones refused
    /// post-accept by the admission cap).
    pub connections_accepted: u64,
    /// Connections currently open (registered and not yet closed).
    pub connections_open: u64,
    /// Complete requests parsed off connections.
    pub requests: u64,
    /// 503 responses (queue-full shed + admission-cap refusals).
    pub responses_503: u64,
    /// 400 responses written for malformed requests.
    pub responses_400: u64,
    /// Handler panics caught (each cost one 500 and one connection).
    pub handler_panics: u64,
    /// Connections closed by the idle-timeout wheel.
    pub idle_closed: u64,
    /// Connections closed for blowing the in-flight write deadline
    /// (slow readers holding a response open past
    /// [`ServerConfig::write_timeout`]).
    pub write_deadline_closed: u64,
    /// Threads the server currently runs (reactors + compute pool, or
    /// acceptor + workers), maintained by RAII guards on each thread.
    pub threads_live: u64,
}

/// RAII thread accounting: every server thread holds one for its
/// lifetime, so `threads_live` is exact even across panics (the guard
/// drops on unwind).
pub(crate) struct ThreadGuard {
    metrics: Arc<ServerMetrics>,
}

impl ThreadGuard {
    pub(crate) fn enter(metrics: &Arc<ServerMetrics>) -> Self {
        metrics.threads_live.fetch_add(1, Ordering::Relaxed);
        Self {
            metrics: Arc::clone(metrics),
        }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        self.metrics.threads_live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The engine actually running behind an [`ApiServer`].
enum Engine {
    Reactor {
        shared: Arc<reactor::Shared>,
        threads: Vec<JoinHandle<()>>,
    },
    WorkerPool {
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
        /// Clone of the bound listener, kept to flip it non-blocking at
        /// shutdown so the accept loop cannot re-block after the wake.
        wake_listener: TcpListener,
    },
}

/// A running API server.
pub struct ApiServer {
    local_addr: SocketAddr,
    service: Arc<AtlasService>,
    metrics: Arc<ServerMetrics>,
    engine: Option<Engine>,
}

impl ApiServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` with default (reactor) sizing.
    pub fn spawn<A: ToSocketAddrs>(addr: A, service: AtlasService) -> std::io::Result<ApiServer> {
        Self::spawn_with(addr, service, ServerConfig::default())
    }

    /// Binds `addr` and starts serving `service` with an explicit
    /// engine + sizing.
    pub fn spawn_with<A: ToSocketAddrs>(
        addr: A,
        service: AtlasService,
        config: ServerConfig,
    ) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(service);
        let metrics = Arc::new(ServerMetrics::default());
        // Give the service a handle to the engine counters so
        // `GET /api/v2/metrics` can export them alongside its own.
        service.attach_server_metrics(Arc::clone(&metrics));

        let engine = match config.mode {
            ServerMode::Reactor => {
                let (shared, threads) = reactor::spawn(
                    listener,
                    Arc::clone(&service),
                    Arc::clone(&metrics),
                    config.reactor_threads,
                    config.compute_threads,
                    config.queue_depth,
                    config.idle_timeout,
                    config.write_timeout,
                    config.max_connections,
                )?;
                Engine::Reactor { shared, threads }
            }
            ServerMode::WorkerPool => {
                let wake_listener = listener.try_clone()?;
                let stop = Arc::new(AtomicBool::new(false));
                let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.queue_depth.max(1));
                let conn_rx = Arc::new(Mutex::new(conn_rx));
                for i in 0..config.compute_threads.max(1) {
                    let rx = Arc::clone(&conn_rx);
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&stop);
                    let metrics = Arc::clone(&metrics);
                    std::thread::Builder::new()
                        .name(format!("shears-api-worker-{i}"))
                        .spawn(move || worker_loop(&rx, &service, &stop, &metrics))?;
                }
                let stop2 = Arc::clone(&stop);
                let metrics2 = Arc::clone(&metrics);
                let accept_thread = std::thread::Builder::new()
                    .name("shears-api-accept".into())
                    .spawn(move || accept_loop(&listener, &conn_tx, &stop2, &metrics2))?;
                Engine::WorkerPool {
                    stop,
                    accept_thread: Some(accept_thread),
                    wake_listener,
                }
            }
        };
        Ok(ApiServer {
            local_addr,
            service,
            metrics,
            engine: Some(engine),
        })
    }

    /// The served service (e.g. to call
    /// [`AtlasService::resume_from_disk`] after spawning over a
    /// durability directory).
    pub fn service(&self) -> &AtlasService {
        &self.service
    }

    /// The bound address (resolve the real port after binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the server's own counters — the soak
    /// test's thread-count pin reads these, not `/proc`.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Stops serving and flushes the service's durable state
    /// (measurement journal files + ledger) so a graceful shutdown
    /// never loses finished work.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.halt();
        self.service.flush()
    }

    /// Stops the engine. Reactor: flags stop, wakes every thread, joins
    /// them all (reactors close their connections on the way out; the
    /// job queue disconnecting drains the compute pool). Worker pool:
    /// wakes and joins the acceptor; workers drain and exit when the
    /// queue sender drops with it — they are not joined, because an
    /// idle keep-alive peer would otherwise hold shutdown hostage for
    /// up to `READ_TIMEOUT`.
    fn halt(&mut self) {
        match self.engine.take() {
            None => {}
            Some(Engine::Reactor { shared, threads }) => {
                shared.stop.store(true, Ordering::SeqCst);
                shared.unpark_all();
                for t in threads {
                    let _ = t.join();
                }
            }
            Some(Engine::WorkerPool {
                stop,
                mut accept_thread,
                wake_listener,
            }) => {
                let Some(t) = accept_thread.take() else {
                    return;
                };
                stop.store(true, Ordering::SeqCst);
                // Even if the wake connect below cannot land, the next
                // accept returns WouldBlock instead of blocking forever.
                let _ = wake_listener.set_nonblocking(true);
                // Kick the accept call that is already blocking.
                let _ = TcpStream::connect_timeout(
                    &wake_addr(self.local_addr),
                    Duration::from_millis(250),
                );
                let _ = t.join();
            }
        }
    }
}

/// Where to self-connect to wake the acceptor: the bound address,
/// with unspecified addresses (0.0.0.0 / ::) mapped to loopback.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.halt();
        // Best-effort flush on implicit drops; `shutdown` reports errors.
        let _ = self.service.flush();
    }
}

fn accept_loop(
    listener: &TcpListener,
    conns: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    metrics: &Arc<ServerMetrics>,
) {
    let _guard = ThreadGuard::enter(metrics);
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    // The shutdown wake (or a late client): drop it.
                    return;
                }
                metrics.note_accept();
                match conns.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Overloaded: refuse politely and move on.
                        metrics.note_503();
                        let mut s = stream;
                        let _ = Response::error(503, "server overloaded").send(&mut s, false);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            // Transient failure (peer reset mid-handshake, fd pressure)
            // or the listener was flipped non-blocking for shutdown.
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent error (e.g. EMFILE fd exhaustion) makes
                // accept() return immediately; back off briefly so the
                // acceptor cannot busy-spin a core while starved.
                if e.kind() != std::io::ErrorKind::WouldBlock {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    service: &AtlasService,
    stop: &AtomicBool,
    metrics: &Arc<ServerMetrics>,
) {
    let _guard = ThreadGuard::enter(metrics);
    loop {
        // Hold the receiver lock only for the dequeue, not while
        // serving: idle workers queue on the lock, busy ones don't.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match next {
            Ok(stream) => {
                metrics.note_conn_opened();
                // Isolate the worker from handler panics: a panic while
                // serving must cost only that connection, never shrink
                // the pool (the service's parking_lot locks release on
                // unwind, so no state is poisoned). Best effort, tell
                // the client before dropping the connection.
                let panic_writer = stream.try_clone().ok();
                let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = serve_connection(stream, service, stop, metrics);
                }));
                if served.is_err() {
                    metrics.note_handler_panic();
                    if let Some(mut w) = panic_writer {
                        let _ = Response::error(500, "internal server error").send(&mut w, false);
                    }
                }
                metrics.note_conn_closed();
            }
            // All senders gone: the server shut down.
            Err(_) => return,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    service: &AtlasService,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Per-connection scratch, reused across keep-alive requests.
    let mut line = String::with_capacity(128);
    let mut out = BytesMut::with_capacity(1024);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request_buffered(&mut reader, &mut line) {
            Ok(req) => {
                metrics.note_request();
                let keep_alive = req.keep_alive();
                let resp = service.handle(&req);
                resp.send_buffered(&mut writer, &mut out, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(HttpError::ConnectionClosed) => return Ok(()),
            Err(HttpError::BadRequest(why)) => {
                metrics.note_400();
                let _ = Response::error(400, &why).send_buffered(&mut writer, &mut out, false);
                return Ok(());
            }
            Err(HttpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection: close quietly.
                return Ok(());
            }
            Err(HttpError::Io(e)) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Platform, PlatformConfig};
    use std::io::{Read, Write};

    fn spawn_server() -> ApiServer {
        let platform = Platform::build(&PlatformConfig::quick(4));
        ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform)).unwrap()
    }

    fn raw_request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_probes_over_real_sockets() {
        let server = spawn_server();
        let resp = raw_request(
            server.local_addr(),
            "GET /api/v2/probes?limit=3 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("country_code"));
        server.shutdown().unwrap();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = spawn_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            // Read exactly one response: headers + declared body.
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            let mut content_length = 0usize;
            loop {
                line.clear();
                std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            assert!(
                String::from_utf8_lossy(&body).contains("balance"),
                "request {i}"
            );
            // Hand the (now drained) stream back for the next iteration.
            s = reader.into_inner();
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = spawn_server();
        let resp = raw_request(server.local_addr(), "NOTHTTP\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let snap = server.metrics();
        assert_eq!(snap.responses_400, 1);
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = spawn_server();
        let addr = server.local_addr();
        server.shutdown().unwrap();
        // Either refused outright, or accepted by the OS backlog and
        // never served — both manifest as an error or empty read.
        if let Ok(mut s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
            let _ = s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 16];
            let got = s.read(&mut buf);
            assert!(matches!(got, Ok(0) | Err(_)), "server still serving: {got:?}");
        }
    }

    #[test]
    fn pool_overflow_connections_get_503_not_a_hang() {
        // Worker-pool engine: one worker, one queue slot — the worker
        // parks in a keep-alive read on the first connection, a second
        // waits in the queue, so a third must be refused fast.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig::worker_pool(1, 1),
        )
        .unwrap();
        let addr = server.local_addr();
        // Occupy the worker with a keep-alive connection; completing a
        // round-trip proves the worker (not the queue) owns it, so no
        // sleep can race the dequeue.
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 12];
        busy.read_exact(&mut first).unwrap();
        assert_eq!(&first, b"HTTP/1.1 200");
        // Fill the single queue slot, give the acceptor a beat to
        // enqueue it, and the next connection must be refused. The
        // refusal is written on accept, before any request: read
        // without writing, so the acceptor closing the stream cannot
        // reset request bytes still in flight from the client.
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let mut refused = TcpStream::connect(addr).unwrap();
        let mut resp = String::new();
        refused.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(server.metrics().responses_503 >= 1);
        drop(busy);
        server.shutdown().unwrap();
    }

    #[test]
    fn reactor_sheds_overload_with_503_and_recovers() {
        // Reactor engine: one compute thread, one queue slot. Occupy
        // the compute thread with a slow debug request and fill the
        // queue; the next request on a *fresh* connection must get 503
        // immediately (the reactor sheds it without blocking), and once
        // the queue drains the same connection serves again.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform).with_debug_routes(),
            ServerConfig::reactor(1, 1, 1),
        )
        .unwrap();
        let addr = server.local_addr();
        let sleep_req = b"GET /api/v2/__debug/sleep?ms=700 HTTP/1.1\r\nHost: t\r\n\r\n";
        // Occupy the compute thread, then fill the single queue slot.
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(sleep_req).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.write_all(sleep_req).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        // This one finds the queue full: immediate 503, connection kept.
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_millis(400))).unwrap();
        shed.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut head = [0u8; 12];
        shed.read_exact(&mut head).unwrap();
        assert_eq!(&head, b"HTTP/1.1 503");
        assert!(server.metrics().responses_503 >= 1);
        // Drain the rest of the 503 response, then reuse the very same
        // connection once the queue has drained: recovery.
        let mut drain = Vec::new();
        loop {
            let mut b = [0u8; 256];
            match shed.read(&mut b) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    drain.extend_from_slice(&b[..n]);
                    if drain.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(1_800));
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        shed.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        shed.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "no recovery: {resp}");
        server.shutdown().unwrap();
    }

    #[test]
    fn handler_panic_does_not_shrink_the_compute_pool() {
        // One compute thread: if a panic killed it, the server would
        // stop serving after the first hostile request.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig::reactor(1, 1, 4),
        )
        .unwrap();
        let addr = server.local_addr();
        for _ in 0..2 {
            let resp = raw_request(
                addr,
                "GET /api/v2/__panic HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            );
            assert!(resp.starts_with("HTTP/1.1 500"), "{resp}");
        }
        let resp = raw_request(
            addr,
            "GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "pool died: {resp}");
        // Every response above was produced by the compute thread, so
        // both server threads are provably up — and still exactly two:
        // 1 reactor + 1 compute, panics notwithstanding.
        let snap = server.metrics();
        assert_eq!(snap.threads_live, 2, "a thread died or was spawned");
        assert_eq!(snap.handler_panics, 2);
        server.shutdown().unwrap();
    }

    #[test]
    fn hostile_percent_escape_cannot_kill_the_server() {
        // `GET /%中` used to panic percent_decode (str slice at a
        // non-char-boundary); with one compute thread that was a full
        // outage.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig::reactor(1, 1, 4),
        )
        .unwrap();
        let addr = server.local_addr();
        let resp = raw_request(
            addr,
            "GET /%中 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = raw_request(
            addr,
            "GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "server died: {resp}");
        server.shutdown().unwrap();
    }

    #[test]
    fn parallel_requests_spread_across_the_pool() {
        let server = spawn_server();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    raw_request(
                        addr,
                        "GET /api/v2/credits HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                    )
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn idle_connections_time_out_and_active_ones_do_not() {
        // Two keep-alive sessions against a 200ms idle timeout: one
        // goes quiet, one keeps issuing requests. The quiet one must be
        // closed cleanly (EOF, not a reset mid-response); the busy one
        // must survive well past the timeout.
        let platform = Platform::build(&PlatformConfig::quick(4));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig::reactor(1, 2, 16).with_idle_timeout(Duration::from_millis(200)),
        )
        .unwrap();
        let addr = server.local_addr();
        let idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        active.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        // Keep the active session busy across 4× the idle timeout.
        for _ in 0..8 {
            active
                .write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let mut head = [0u8; 12];
            active.read_exact(&mut head).unwrap();
            assert_eq!(&head, b"HTTP/1.1 200");
            // Drain to the end of this response (headers + body).
            let mut buf = Vec::new();
            let mut b = [0u8; 512];
            let mut content_length = None;
            loop {
                let n = active.read(&mut b).unwrap();
                buf.extend_from_slice(&b[..n]);
                if content_length.is_none() {
                    if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                        let head_text = String::from_utf8_lossy(&buf[..end]);
                        let cl = head_text
                            .lines()
                            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(|v| v.trim().parse::<usize>().unwrap()));
                        content_length = Some((end + 4, cl.unwrap_or(0)));
                    }
                }
                if let Some((body_at, cl)) = content_length {
                    if buf.len() >= body_at + cl {
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        // The idle session must be gone by now: a read sees clean EOF.
        let mut probe = [0u8; 8];
        let mut idle = idle;
        let got = idle.read(&mut probe);
        assert!(matches!(got, Ok(0)), "idle conn not closed cleanly: {got:?}");
        assert!(server.metrics().idle_closed >= 1);
        server.shutdown().unwrap();
    }
}
