//! The blocking HTTP server.
//!
//! Thread-per-connection over `std::net::TcpListener` with:
//!
//! * keep-alive (multiple requests per connection),
//! * a concurrent-connection cap (excess connections get 503),
//! * per-connection read timeouts so dead peers release their thread,
//! * cooperative shutdown: the accept loop polls a flag between
//!   (non-blocking) accepts, and [`ApiServer::shutdown`] joins it.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, HttpError, Response};
use crate::service::AtlasService;

/// Maximum concurrently served connections.
const MAX_CONNECTIONS: usize = 64;
/// Socket read timeout: a keep-alive connection idle this long is
/// closed.
const READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-loop poll interval while idle. This bounds the latency a new
/// connection pays before being accepted (the Criterion API benches
/// measure it directly), so it is kept tight; the idle cost is ~1000
/// empty accept() calls per second, which is negligible.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// A running API server.
pub struct ApiServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<AtlasService>,
}

impl ApiServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` in background threads.
    pub fn spawn<A: ToSocketAddrs>(addr: A, service: AtlasService) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(service);
        let live = Arc::new(AtomicUsize::new(0));

        let stop2 = Arc::clone(&stop);
        let service2 = Arc::clone(&service);
        let accept_thread = std::thread::Builder::new()
            .name("shears-api-accept".into())
            .spawn(move || {
                accept_loop(listener, service2, live, stop2);
            })?;
        Ok(ApiServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            service,
        })
    }

    /// The served service (e.g. to call
    /// [`AtlasService::resume_from_disk`] after spawning over a
    /// durability directory).
    pub fn service(&self) -> &AtlasService {
        &self.service
    }

    /// The bound address (resolve the real port after binding `:0`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections, joins the accept thread, and
    /// flushes the service's durable state (measurement journal files +
    /// ledger) so a graceful shutdown never loses finished work.
    /// In-flight connections finish their current request.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.service.flush()
    }
}

impl Drop for ApiServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Best-effort flush on implicit drops; `shutdown` reports errors.
        let _ = self.service.flush();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<AtlasService>,
    live: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                    // Overloaded: refuse politely and move on.
                    let mut s = stream;
                    let _ = Response::error(503, "server overloaded").send(&mut s, false);
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let service = Arc::clone(&service);
                let live = Arc::clone(&live);
                let stop = Arc::clone(&stop);
                let _ = std::thread::Builder::new()
                    .name("shears-api-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &service, &stop);
                        live.fetch_sub(1, Ordering::SeqCst);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept error; brief backoff.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    service: &AtlasService,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request(&mut reader) {
            Ok(req) => {
                let keep_alive = req.keep_alive();
                let resp = service.handle(&req);
                resp.send(&mut writer, keep_alive)?;
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(HttpError::ConnectionClosed) => return Ok(()),
            Err(HttpError::BadRequest(why)) => {
                let _ = Response::error(400, &why).send(&mut writer, false);
                return Ok(());
            }
            Err(HttpError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection: close quietly.
                return Ok(());
            }
            Err(HttpError::Io(e)) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shears_atlas::{Platform, PlatformConfig};
    use std::io::{Read, Write};

    fn spawn_server() -> ApiServer {
        let platform = Platform::build(&PlatformConfig::quick(4));
        ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform)).unwrap()
    }

    fn raw_request(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_probes_over_real_sockets() {
        let server = spawn_server();
        let resp = raw_request(
            server.local_addr(),
            "GET /api/v2/probes?limit=3 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("country_code"));
        server.shutdown().unwrap();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = spawn_server();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            // Read exactly one response: headers + declared body.
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            let mut content_length = 0usize;
            loop {
                line.clear();
                std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap();
                }
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            assert!(
                String::from_utf8_lossy(&body).contains("balance"),
                "request {i}"
            );
            // Hand the (now drained) stream back for the next iteration.
            s = reader.into_inner();
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = spawn_server();
        let resp = raw_request(server.local_addr(), "NOTHTTP\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = spawn_server();
        let addr = server.local_addr();
        server.shutdown().unwrap();
        // Either refused outright, or accepted by the OS backlog and
        // never served — both manifest as an error or empty read.
        if let Ok(mut s) = TcpStream::connect(addr) {
            s.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
            let _ = s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 16];
            let got = s.read(&mut buf);
            assert!(matches!(got, Ok(0) | Err(_)), "server still serving: {got:?}");
        }
    }
}
