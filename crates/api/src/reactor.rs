//! The readiness-driven connection reactor.
//!
//! Replaces the thread-per-connection worker pool on the serving path:
//! every accepted socket is nonblocking and owned by exactly one of a
//! small, fixed set of *reactor* threads, each running a poll-style
//! event loop over its connections. A connection is an explicit state
//! machine —
//!
//! ```text
//! Idle ──bytes──▶ ReadingRequest ──complete──▶ Handling ──response──▶
//! WritingResponse ──drained──▶ Idle   (or Closing at any edge)
//! ```
//!
//! — so 10k idle keep-alive sessions cost zero threads: they are slab
//! slots plus one registered deadline in the idle-timeout wheel, not
//! parked OS threads. Request *handling* still fans out to a bounded
//! compute pool (handlers run campaigns and build analysis frames; that
//! work should use cores, and a bounded queue gives back-pressure: when
//! it is full the reactor answers 503 immediately — the connection
//! survives, the work is shed).
//!
//! ## Readiness without `epoll`
//!
//! The workspace forbids `unsafe` (and adds no dependencies), so there
//! is no raw `epoll`/`kqueue` here. Readiness is *emulated*: all
//! sockets are nonblocking, and each reactor sweeps its connections
//! with nonblocking reads/writes — `WouldBlock` simply means "not
//! ready". Between sweeps that made no progress the reactor parks on a
//! condvar for one tick (1 ms); compute completions and new-connection
//! hand-offs unpark it, so response latency does not pay the park. To
//! keep huge idle fleets cheap, connections idle for more than a few
//! ticks graduate to a *cold tier* swept only every
//! [`COLD_SWEEP_EVERY`]th iteration: a 10k-idle-session soak costs a
//! few hundred — not ten thousand — read syscalls per sweep.
//!
//! ## Ownership & wake-up paths
//!
//! * The listener is nonblocking and polled by reactor 0, which
//!   round-robins accepted sockets across all reactors through
//!   per-reactor mailboxes. No dedicated acceptor thread.
//! * Compute workers block on one shared job queue; each finished
//!   response is pushed to the owning reactor's completion list and the
//!   reactor is unparked. Slot generations guard against a completion
//!   landing on a recycled slot.
//! * Shutdown sets a flag and unparks everyone: reactors drop their
//!   connections and their job senders, compute workers drain and exit
//!   on the disconnected queue.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{HttpError, Request, RequestParser, Response};
use crate::server::{ServerMetrics, ThreadGuard};
use crate::service::AtlasService;
use crate::transport::{WorkStream, STREAM_PREAMBLE};

/// Park interval when a sweep made no progress. Bounds both accept
/// latency (reactor 0 polls the listener each wake) and the added
/// latency of a request arriving on a connection nobody unparks for.
const PARK: Duration = Duration::from_millis(1);

/// Sweep iterations between cold-tier scans. Idle connections are read
/// this much less often; a request landing on one waits at most
/// `COLD_SWEEP_EVERY × PARK` extra before it is noticed.
const COLD_SWEEP_EVERY: u64 = 16;

/// A connection is cold once it has been idle this long.
const COLD_AFTER: Duration = Duration::from_millis(50);

/// Per-iteration accept cap so one flood cannot starve existing
/// connections of sweep time.
const ACCEPT_BATCH: usize = 256;

/// Read scratch size per reactor (shared across its connections).
const READ_CHUNK: usize = 16 * 1024;

/// Condvar-based parker: reactors park between idle sweeps, compute
/// workers and the acceptor unpark them on new work.
pub(crate) struct Parker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Self {
        Self {
            ready: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn park_timeout(&self, d: Duration) {
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        if !*ready {
            let (guard, _) = self
                .cv
                .wait_timeout(ready, d)
                .unwrap_or_else(|e| e.into_inner());
            ready = guard;
        }
        *ready = false;
    }

    pub(crate) fn unpark(&self) {
        *self.ready.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }
}

/// A handler's finished work, routed back to the owning reactor.
struct Completion {
    slot: usize,
    gen: u64,
    /// The serialised response (head + body), ready to write.
    bytes: Vec<u8>,
    keep_alive: bool,
    /// The handler panicked (the response is a canned 500); the
    /// connection closes after the write regardless of keep-alive.
    panicked: bool,
}

/// A request dispatched to the compute pool.
struct Job {
    reactor: usize,
    slot: usize,
    gen: u64,
    req: Request,
    keep_alive: bool,
}

/// Per-reactor mailbox: how the outside world reaches a reactor thread.
pub(crate) struct Mailbox {
    pub(crate) parker: Parker,
    completions: Mutex<Vec<Completion>>,
    inbox: Mutex<VecDeque<TcpStream>>,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            parker: Parker::new(),
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(VecDeque::new()),
        }
    }
}

/// State shared by all reactor + compute threads of one server.
pub(crate) struct Shared {
    pub(crate) service: Arc<AtlasService>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: AtomicBool,
    pub(crate) mailboxes: Vec<Mailbox>,
    idle_timeout: Duration,
    write_timeout: Duration,
    max_connections: usize,
}

impl Shared {
    /// Wakes every reactor (shutdown, or broadcast events).
    pub(crate) fn unpark_all(&self) {
        for mb in &self.mailboxes {
            mb.parker.unpark();
        }
    }
}

/// Spawns the reactor threads + compute pool for `listener`. Returns
/// the shared handle and every thread to join at shutdown.
pub(crate) fn spawn(
    listener: TcpListener,
    service: Arc<AtlasService>,
    metrics: Arc<ServerMetrics>,
    reactor_threads: usize,
    compute_threads: usize,
    queue_depth: usize,
    idle_timeout: Duration,
    write_timeout: Duration,
    max_connections: usize,
) -> std::io::Result<(Arc<Shared>, Vec<std::thread::JoinHandle<()>>)> {
    listener.set_nonblocking(true)?;
    let reactors = reactor_threads.max(1);
    let shared = Arc::new(Shared {
        service,
        metrics,
        stop: AtomicBool::new(false),
        mailboxes: (0..reactors).map(|_| Mailbox::new()).collect(),
        idle_timeout,
        write_timeout,
        max_connections: max_connections.max(8),
    });

    let (job_tx, job_rx) = sync_channel::<Job>(queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));

    let mut threads = Vec::with_capacity(reactors + compute_threads);
    for i in 0..compute_threads.max(1) {
        let rx = Arc::clone(&job_rx);
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("shears-api-compute-{i}"))
                .spawn(move || compute_loop(&rx, &shared))?,
        );
    }
    for r in 0..reactors {
        let shared = Arc::clone(&shared);
        let tx = job_tx.clone();
        let listener = if r == 0 { Some(listener.try_clone()?) } else { None };
        threads.push(
            std::thread::Builder::new()
                .name(format!("shears-api-reactor-{r}"))
                .spawn(move || Reactor::new(r, shared, tx, listener).run())?,
        );
    }
    // The reactor threads hold the only senders now: when they exit,
    // the queue disconnects and the compute pool drains out.
    drop(job_tx);
    Ok((shared, threads))
}

/// The compute pool: blocking workers executing handlers outside the
/// event loop, isolated from panics.
fn compute_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    let _guard = ThreadGuard::enter(&shared.metrics);
    loop {
        // Hold the receiver lock only for the dequeue.
        let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return, // all reactors gone
        };
        let service = Arc::clone(&shared.service);
        let req = job.req;
        let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.handle(&req)
        }));
        let (resp, panicked) = match handled {
            Ok(resp) => (resp, false),
            Err(_) => {
                shared.metrics.note_handler_panic();
                (Response::error(500, "internal server error"), true)
            }
        };
        let keep_alive = job.keep_alive && !panicked;
        let mut buf = bytes::BytesMut::with_capacity(256 + resp.body.len());
        resp.write_into(&mut buf, keep_alive);
        let mb = &shared.mailboxes[job.reactor];
        mb.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion {
                slot: job.slot,
                gen: job.gen,
                bytes: buf.to_vec(),
                keep_alive,
                panicked,
            });
        mb.parker.unpark();
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Connection lifecycle states (the explicit machine the module doc
/// draws). `Handling` means a job for this connection is in the
/// compute pool; the reactor neither reads nor writes it until the
/// completion lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Keep-alive connection with no partial request buffered.
    Idle,
    /// A partial request has arrived; more bytes expected.
    ReadingRequest,
    /// Request dispatched to the compute pool.
    Handling,
    /// Response bytes queued; draining to the socket.
    WritingResponse,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// First-bytes buffer while the connection's dialect is undecided:
    /// a [`STREAM_PREAMBLE`] prefix upgrades it to a raw work stream,
    /// anything else falls through to HTTP parsing. `None` once
    /// resolved.
    sniff: Option<Vec<u8>>,
    /// Present iff this connection upgraded to the binary work plane.
    /// The reactor keeps driving the same state machine (read sweep,
    /// write drain, idle wheel, write deadline); only the byte
    /// discipline changes.
    work: Option<Box<WorkStream>>,
    state: ConnState,
    /// Response bytes being drained and the write cursor into them.
    out: Vec<u8>,
    out_pos: usize,
    /// Guards completions/timers against slab slot reuse.
    gen: u64,
    last_active: Instant,
    /// When the current response *started* draining. Write progress
    /// refreshes `last_active`, so a peer sipping one byte per
    /// interval would never look idle — the write deadline is judged
    /// from this fixed start instead.
    write_started: Option<Instant>,
    close_after_write: bool,
    /// Peer half-closed its write side; serve what is buffered, then
    /// close.
    peer_eof: bool,
    /// Live timer-wheel tokens pointing at this incarnation. Arming
    /// the write deadline adds a second, sooner token; the deadline
    /// check drops surplus pops instead of reinserting them, so the
    /// count stays bounded at the number of genuinely armed deadlines.
    timers: u32,
}

/// The idle-timeout deadline wheel: 32 coarse slots of
/// `idle_timeout / 16` ticks. Entries are `(slot, gen)` tokens checked
/// lazily on expiry — activity never *moves* an entry, it just updates
/// the connection's `last_active`; a popped token whose connection is
/// still fresh is reinserted at its true deadline. O(1) insert,
/// amortised O(1) per expiry.
struct IdleWheel {
    slots: Vec<Vec<(usize, u64)>>,
    tick: Duration,
    cursor: usize,
    last_advance: Instant,
}

impl IdleWheel {
    fn new(timeout: Duration, now: Instant) -> Self {
        let tick = (timeout / 16).max(Duration::from_millis(1));
        Self {
            slots: (0..32).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            last_advance: now,
        }
    }

    fn insert(&mut self, token: (usize, u64), deadline: Instant, now: Instant) {
        let ticks_ahead = if deadline <= now {
            1
        } else {
            let dt = deadline.duration_since(now);
            ((dt.as_nanos() / self.tick.as_nanos().max(1)) as usize + 1).min(self.slots.len() - 1)
        };
        let idx = (self.cursor + ticks_ahead) % self.slots.len();
        self.slots[idx].push(token);
    }

    /// Advances the cursor to `now`, appending every token whose slot
    /// came due to `expired` (the caller re-checks real deadlines).
    fn advance(&mut self, now: Instant, expired: &mut Vec<(usize, u64)>) {
        while self.last_advance + self.tick <= now {
            self.last_advance += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            expired.append(&mut self.slots[self.cursor]);
        }
    }
}

struct Reactor {
    id: usize,
    shared: Arc<Shared>,
    job_tx: SyncSender<Job>,
    /// Reactor 0 polls the listener; the rest receive hand-offs.
    listener: Option<TcpListener>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    wheel: IdleWheel,
    next_gen: u64,
    /// Round-robin cursor for distributing accepted connections.
    rr: usize,
    iteration: u64,
}

impl Reactor {
    fn new(
        id: usize,
        shared: Arc<Shared>,
        job_tx: SyncSender<Job>,
        listener: Option<TcpListener>,
    ) -> Self {
        let now = Instant::now();
        let wheel = IdleWheel::new(shared.idle_timeout, now);
        Self {
            id,
            shared,
            job_tx,
            listener,
            slab: Vec::new(),
            free: Vec::new(),
            wheel,
            next_gen: 0,
            rr: 0,
            iteration: 0,
        }
    }

    fn run(mut self) {
        let shared = Arc::clone(&self.shared);
        let _guard = ThreadGuard::enter(&shared.metrics);
        let mut scratch = vec![0u8; READ_CHUNK];
        let mut expired = Vec::new();
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                self.close_all();
                return;
            }
            self.iteration += 1;
            let mut progress = false;

            // 1. Apply finished handler work.
            let done: Vec<Completion> = std::mem::take(
                &mut *shared.mailboxes[self.id]
                    .completions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()),
            );
            for c in done {
                progress |= self.apply_completion(c);
            }

            // 2. Adopt connections handed to this reactor.
            loop {
                let next = shared.mailboxes[self.id]
                    .inbox
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                match next {
                    Some(stream) => {
                        self.register(stream);
                        progress = true;
                    }
                    None => break,
                }
            }

            // 3. Reactor 0: poll the listener.
            if self.listener.is_some() {
                progress |= self.accept_batch();
            }

            // 4. Sweep owned connections.
            let cold_sweep = self.iteration % COLD_SWEEP_EVERY == 0;
            let now = Instant::now();
            for slot in 0..self.slab.len() {
                progress |= self.sweep_conn(slot, now, cold_sweep, &mut scratch);
            }

            // 5. Idle-timeout wheel.
            expired.clear();
            self.wheel.advance(now, &mut expired);
            for (slot, gen) in expired.drain(..) {
                self.check_deadline(slot, gen, now);
            }

            if !progress {
                shared.mailboxes[self.id].parker.park_timeout(PARK);
            }
        }
    }

    fn accept_batch(&mut self) -> bool {
        let mut progress = false;
        for _ in 0..ACCEPT_BATCH {
            let listener = self.listener.as_ref().expect("only reactor 0 accepts");
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progress = true;
                    self.shared.metrics.note_accept();
                    if self.shared.metrics.connections_open() as usize
                        >= self.shared.max_connections
                    {
                        // Admission control: refuse beyond the fd
                        // budget instead of dying on EMFILE later.
                        let mut s = stream;
                        let _ = Response::error(503, "server overloaded").send(&mut s, false);
                        self.shared.metrics.note_503();
                        continue;
                    }
                    // Round-robin across reactors; own slice directly.
                    let target = self.rr % self.shared.mailboxes.len();
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.id {
                        self.register(stream);
                    } else {
                        self.shared.mailboxes[target]
                            .inbox
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push_back(stream);
                        self.shared.mailboxes[target].parker.unpark();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transient accept failure (peer reset mid-
                    // handshake, fd pressure): stop this batch; the
                    // park interval is the backoff.
                    break;
                }
            }
        }
        progress
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        self.next_gen += 1;
        let now = Instant::now();
        let conn = Conn {
            stream,
            parser: RequestParser::new(),
            sniff: Some(Vec::new()),
            work: None,
            state: ConnState::Idle,
            out: Vec::new(),
            out_pos: 0,
            gen: self.next_gen,
            last_active: now,
            write_started: None,
            close_after_write: false,
            peer_eof: false,
            timers: 1,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(conn);
                s
            }
            None => {
                self.slab.push(Some(conn));
                self.slab.len() - 1
            }
        };
        self.wheel
            .insert((slot, self.next_gen), now + self.shared.idle_timeout, now);
        self.shared.metrics.note_conn_opened();
    }

    fn close(&mut self, slot: usize) {
        if let Some(mut conn) = self.slab[slot].take() {
            if let Some(ws) = conn.work.as_mut() {
                if let Some(queue) = self.shared.service.work_queue() {
                    ws.on_close(queue);
                }
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
            self.shared.metrics.note_conn_closed();
        }
    }

    fn is_work(&self, slot: usize) -> bool {
        self.slab
            .get(slot)
            .and_then(|c| c.as_ref())
            .is_some_and(|c| c.work.is_some())
    }

    fn close_all(&mut self) {
        for slot in 0..self.slab.len() {
            self.close(slot);
        }
    }

    /// One sweep step for one connection; returns whether it made
    /// progress.
    fn sweep_conn(&mut self, slot: usize, now: Instant, cold_sweep: bool, scratch: &mut [u8]) -> bool {
        let Some(conn) = &mut self.slab[slot] else {
            return false;
        };
        match conn.state {
            ConnState::Handling => false, // waiting on the compute pool
            ConnState::WritingResponse => self.write_step(slot, now),
            ConnState::Idle | ConnState::ReadingRequest => {
                // Cold-tier gating: long-idle connections are swept
                // only on cold sweeps, so huge idle fleets cost a
                // fraction of the read syscalls.
                if conn.state == ConnState::Idle
                    && !cold_sweep
                    && now.duration_since(conn.last_active) > COLD_AFTER
                {
                    return false;
                }
                self.read_step(slot, now, scratch)
            }
        }
    }

    /// Nonblocking read + incremental parse + dispatch.
    fn read_step(&mut self, slot: usize, now: Instant, scratch: &mut [u8]) -> bool {
        let mut progress = false;
        let mut dead = false;
        {
            let Some(conn) = &mut self.slab[slot] else {
                return false;
            };
            loop {
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        progress = true;
                        break;
                    }
                    Ok(n) => {
                        Self::route_bytes(conn, &scratch[..n]);
                        conn.last_active = now;
                        conn.state = ConnState::ReadingRequest;
                        progress = true;
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close(slot);
            return true;
        }
        if progress {
            if self.is_work(slot) {
                self.drive_work(slot, now);
            } else {
                self.drive_parser(slot, now);
            }
        }
        progress
    }

    /// Feeds freshly read bytes to the right decoder: the work-stream
    /// framer once upgraded, the HTTP parser once the first bytes rule
    /// the preamble out, or the sniff buffer while still undecided.
    fn route_bytes(conn: &mut Conn, data: &[u8]) {
        if let Some(ws) = conn.work.as_mut() {
            ws.feed(data);
            return;
        }
        let Some(pre) = conn.sniff.as_mut() else {
            conn.parser.feed(data);
            return;
        };
        pre.extend_from_slice(data);
        if pre.len() >= STREAM_PREAMBLE.len() {
            let pre = conn.sniff.take().expect("sniff checked above");
            if pre[..STREAM_PREAMBLE.len()] == STREAM_PREAMBLE {
                let mut ws = Box::new(WorkStream::new());
                ws.feed(&pre[STREAM_PREAMBLE.len()..]);
                conn.work = Some(ws);
            } else {
                conn.parser.feed(&pre);
            }
        } else if !STREAM_PREAMBLE.starts_with(pre.as_slice()) {
            // Too short to be the preamble already: hand to HTTP now
            // rather than withholding a short request from the parser.
            let pre = conn.sniff.take().expect("sniff checked above");
            conn.parser.feed(&pre);
        }
    }

    /// Advances an upgraded work-stream connection: decode whatever is
    /// buffered, drive the work queue, start draining replies. Any
    /// stream error closes the connection — the worker's WAL replay on
    /// reconnect makes that equivalent to a dropped HTTP response.
    fn drive_work(&mut self, slot: usize, now: Instant) {
        let Some(queue) = self.shared.service.work_queue().cloned() else {
            // No work plane configured: a preamble here is garbage.
            self.close(slot);
            return;
        };
        let mut failed = false;
        let mut writing = false;
        {
            let Some(conn) = &mut self.slab[slot] else {
                return;
            };
            let Some(ws) = conn.work.as_mut() else {
                return;
            };
            if conn.state == ConnState::WritingResponse || conn.state == ConnState::Handling {
                return; // finish the current drain; flushed → driven again
            }
            let mut out = std::mem::take(&mut conn.out);
            failed = ws.drive(&queue, now, &mut out).is_err();
            if !failed {
                if out.is_empty() {
                    conn.out = out;
                    conn.state = if ws.has_pending_input() {
                        ConnState::ReadingRequest
                    } else {
                        ConnState::Idle
                    };
                } else {
                    conn.out = out;
                    conn.out_pos = 0;
                    conn.close_after_write = false;
                    conn.state = ConnState::WritingResponse;
                    conn.write_started = Some(now);
                    writing = true;
                }
            }
        }
        if failed {
            self.close(slot);
            return;
        }
        if writing {
            self.write_step(slot, now);
            self.arm_write_deadline(slot, now);
        } else if self
            .slab
            .get(slot)
            .and_then(|c| c.as_ref())
            .is_some_and(|c| c.peer_eof)
        {
            self.close(slot);
        }
    }

    /// Polls the incremental parser and advances the state machine:
    /// dispatch on a complete request, 400-and-close on a malformed
    /// one, close on EOF.
    fn drive_parser(&mut self, slot: usize, now: Instant) {
        let Some(conn) = &mut self.slab[slot] else {
            return;
        };
        if conn.state != ConnState::Idle && conn.state != ConnState::ReadingRequest {
            return;
        }
        match conn.parser.poll(conn.peer_eof) {
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive() && !conn.peer_eof;
                conn.state = ConnState::Handling;
                conn.last_active = now;
                let job = Job {
                    reactor: self.id,
                    slot,
                    gen: conn.gen,
                    req,
                    keep_alive,
                };
                self.shared.metrics.note_request();
                match self.job_tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        // Back-pressure: shed the request, keep the
                        // connection. The client sees 503 and may
                        // retry after the queue drains.
                        self.shared.metrics.note_503();
                        self.queue_response(
                            slot,
                            &Response::error(503, "server overloaded"),
                            keep_alive,
                            now,
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => self.close(slot),
                }
            }
            Ok(None) => {
                if conn.peer_eof && conn.parser.is_idle() {
                    self.close(slot);
                } else if conn.parser.is_idle() {
                    conn.state = ConnState::Idle;
                }
            }
            Err(HttpError::ConnectionClosed) => self.close(slot),
            Err(HttpError::BadRequest(why)) => {
                self.shared.metrics.note_400();
                self.queue_response(slot, &Response::error(400, &why), false, now);
            }
            Err(HttpError::Io(_)) => self.close(slot),
        }
    }

    /// Serialises `resp` straight into the connection's write buffer
    /// (reactor-side responses: 400/503 — handler responses arrive via
    /// completions) and starts draining it.
    fn queue_response(&mut self, slot: usize, resp: &Response, keep_alive: bool, now: Instant) {
        let Some(conn) = &mut self.slab[slot] else {
            return;
        };
        let mut buf = bytes::BytesMut::with_capacity(256 + resp.body.len());
        resp.write_into(&mut buf, keep_alive);
        conn.out = buf.to_vec();
        conn.out_pos = 0;
        conn.close_after_write = !keep_alive;
        conn.state = ConnState::WritingResponse;
        conn.last_active = now;
        conn.write_started = Some(now);
        self.write_step(slot, now);
        self.arm_write_deadline(slot, now);
    }

    /// If `slot` is still stuck in `WritingResponse` after the first
    /// drain attempt, schedule a wheel token at the write deadline.
    /// The standing idle token is typically much later (idle timeout
    /// vs write timeout), so without this a stalled write would only
    /// be judged when the idle token happened to pop.
    fn arm_write_deadline(&mut self, slot: usize, now: Instant) {
        let write_timeout = self.shared.write_timeout;
        let Some(Some(conn)) = self.slab.get_mut(slot) else {
            return;
        };
        if conn.state != ConnState::WritingResponse {
            return;
        }
        let started = conn.write_started.unwrap_or(now);
        let gen = conn.gen;
        conn.timers += 1;
        self.wheel.insert((slot, gen), started + write_timeout, now);
    }

    /// Routes a compute completion to its connection (if the slot still
    /// holds the same generation).
    fn apply_completion(&mut self, c: Completion) -> bool {
        let now = Instant::now();
        let Some(Some(conn)) = self.slab.get_mut(c.slot) else {
            return false;
        };
        if conn.gen != c.gen || conn.state != ConnState::Handling {
            return false;
        }
        conn.out = c.bytes;
        conn.out_pos = 0;
        conn.close_after_write = !c.keep_alive || c.panicked;
        conn.state = ConnState::WritingResponse;
        conn.last_active = now;
        conn.write_started = Some(now);
        self.write_step(c.slot, now);
        self.arm_write_deadline(c.slot, now);
        true
    }

    /// Nonblocking write; on a full drain the connection goes back to
    /// reading (immediately serving a pipelined successor if one is
    /// already buffered) or closes.
    fn write_step(&mut self, slot: usize, now: Instant) -> bool {
        let mut progress = false;
        let mut dead = false;
        let mut drained = false;
        let mut close_after = false;
        {
            let Some(conn) = &mut self.slab[slot] else {
                return false;
            };
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_active = now;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Peer went away mid-response (EPIPE/reset):
                        // this connection dies, the reactor shrugs.
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                // Fully drained.
                drained = true;
                close_after = conn.close_after_write;
                conn.out = Vec::new();
                conn.out_pos = 0;
                conn.write_started = None;
                if !close_after {
                    conn.state = ConnState::Idle;
                    conn.last_active = now;
                }
            }
        }
        if dead || close_after {
            self.close(slot);
        } else if drained {
            if self.is_work(slot) {
                // Verdicts in that batch are now on the wire: settle
                // the in-flight gauge + latency histogram, then decode
                // anything that arrived while we were draining.
                if let Some(queue) = self.shared.service.work_queue().cloned() {
                    if let Some(Some(conn)) = self.slab.get_mut(slot) {
                        if let Some(ws) = conn.work.as_mut() {
                            ws.note_flushed(&queue, now);
                        }
                    }
                }
                self.drive_work(slot, now);
            } else {
                // A pipelined request may be fully buffered already.
                self.drive_parser(slot, now);
            }
        }
        true
    }

    /// Re-checks a popped timer token against the connection's true
    /// deadline: close if expired, reinsert otherwise.
    ///
    /// Quiet connections (`Idle`/`ReadingRequest`) are judged by
    /// inactivity — a mid-request dribble (slowloris) is reset by any
    /// byte. In-flight writes are judged from when the response
    /// *started* draining: a peer sipping one byte per interval keeps
    /// `last_active` fresh forever, so inactivity alone can never
    /// catch a slow reader holding a response open.
    fn check_deadline(&mut self, slot: usize, gen: u64, now: Instant) {
        let idle_timeout = self.shared.idle_timeout;
        let write_timeout = self.shared.write_timeout;
        let Some(Some(conn)) = self.slab.get_mut(slot) else {
            return;
        };
        if conn.gen != gen {
            return; // slot was recycled; the new conn has its own token
        }
        conn.timers = conn.timers.saturating_sub(1);
        // Surplus tokens (an armed write deadline whose response has
        // since drained) are dropped, not reinserted: the survivor
        // carries the connection. Only the last live token re-arms.
        let last_token = conn.timers == 0;
        match conn.state {
            ConnState::Idle | ConnState::ReadingRequest => {
                if now.duration_since(conn.last_active) >= idle_timeout {
                    self.shared.metrics.note_idle_closed();
                    self.close(slot);
                } else if last_token {
                    let deadline = conn.last_active + idle_timeout;
                    conn.timers += 1;
                    self.wheel.insert((slot, gen), deadline, now);
                }
            }
            ConnState::WritingResponse => {
                let started = conn.write_started.unwrap_or(conn.last_active);
                if now.duration_since(started) >= write_timeout {
                    self.shared.metrics.note_write_deadline_closed();
                    self.close(slot);
                } else if last_token {
                    conn.timers += 1;
                    self.wheel.insert((slot, gen), started + write_timeout, now);
                }
            }
            ConnState::Handling => {
                // The compute pool bounds handler time; keep the timer
                // ticking so the write deadline arms as soon as the
                // response starts draining.
                if last_token {
                    let deadline = conn.last_active + idle_timeout;
                    conn.timers += 1;
                    self.wheel.insert((slot, gen), deadline, now);
                }
            }
        }
    }
}
