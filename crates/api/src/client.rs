//! A blocking API client.
//!
//! [`ApiClient`] opens one connection per request (`Connection:
//! close`), which keeps it state-free. [`ApiSession`] holds one
//! keep-alive connection and issues requests back to back over it — the
//! shape a load generator (or any high-throughput client) wants.
//! Typed helpers wrap the endpoints the examples use.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::dto::{
    CreateMeasurementDto, CreateTracerouteDto, MeasurementDto, ProbeDto, RegionDto, ResultDto,
    TracerouteDto,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Response violated HTTP framing.
    Protocol(String),
    /// Server answered with a non-2xx status.
    Status(u16, String),
    /// Body did not decode as the expected type.
    Decode(serde_json::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(why) => write!(f, "protocol: {why}"),
            ClientError::Status(code, body) => write!(f, "status {code}: {body}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking HTTP client bound to one server address.
#[derive(Debug, Clone)]
pub struct ApiClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl ApiClient {
    /// Creates a client for the given server address with the default
    /// 10-second socket timeouts.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_timeout(addr, Duration::from_secs(10))
    }

    /// Creates a client with explicit read/write socket timeouts, so a
    /// hung peer can never wedge the calling thread past `timeout`.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        Self { addr, timeout }
    }

    /// Issues a request and returns `(status, body)`.
    ///
    /// Idempotent `GET`s are retried exactly once on a fresh
    /// connection when the peer drops the socket mid-exchange
    /// (reset/broken pipe/unexpected EOF — the stale-keep-alive and
    /// server-restart races); other methods surface the error.
    pub fn request(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        match self.request_once(method, path_and_query, body) {
            Err(e) if method == "GET" && dropped_connection(&e) => {
                self.request_once(method, path_and_query, body)
            }
            r => r,
        }
    }

    fn request_once(
        &self,
        method: &str,
        path_and_query: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let (status, content_length) = read_response_head(&mut reader)?;
        let body = match content_length {
            Some(len) => {
                let mut buf = vec![0u8; len];
                reader.read_exact(&mut buf)?;
                buf
            }
            None => {
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        };
        Ok((status, body))
    }

    fn get_json<T: serde::de::DeserializeOwned>(&self, path: &str) -> Result<T, ClientError> {
        let (status, body) = self.request("GET", path, None)?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status(
                status,
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        serde_json::from_slice(&body).map_err(ClientError::Decode)
    }

    /// `GET /api/v2/probes` with optional country/tag filters.
    pub fn list_probes(
        &self,
        country: Option<&str>,
        tag: Option<&str>,
        limit: usize,
    ) -> Result<Vec<ProbeDto>, ClientError> {
        let mut path = format!("/api/v2/probes?limit={limit}");
        if let Some(c) = country {
            path.push_str(&format!("&country={c}"));
        }
        if let Some(t) = tag {
            path.push_str(&format!("&tag={t}"));
        }
        self.get_json(&path)
    }

    /// `GET /api/v2/probes/{id}`.
    pub fn get_probe(&self, id: u32) -> Result<ProbeDto, ClientError> {
        self.get_json(&format!("/api/v2/probes/{id}"))
    }

    /// `GET /api/v2/regions`.
    pub fn list_regions(&self) -> Result<Vec<RegionDto>, ClientError> {
        self.get_json("/api/v2/regions")
    }

    /// `POST /api/v2/measurements`.
    pub fn create_measurement(
        &self,
        spec: &CreateMeasurementDto,
    ) -> Result<MeasurementDto, ClientError> {
        let body = serde_json::to_vec(spec).map_err(ClientError::Decode)?;
        let (status, resp) = self.request("POST", "/api/v2/measurements", Some(&body))?;
        if status != 201 {
            return Err(ClientError::Status(
                status,
                String::from_utf8_lossy(&resp).into_owned(),
            ));
        }
        serde_json::from_slice(&resp).map_err(ClientError::Decode)
    }

    /// `GET /api/v2/measurements`.
    pub fn list_measurements(&self) -> Result<Vec<MeasurementDto>, ClientError> {
        self.get_json("/api/v2/measurements")
    }

    /// `GET /api/v2/measurements/{id}/results`.
    pub fn results(&self, id: u64) -> Result<Vec<ResultDto>, ClientError> {
        self.get_json(&format!("/api/v2/measurements/{id}/results"))
    }

    /// `POST /api/v2/traceroutes`.
    pub fn run_traceroutes(
        &self,
        spec: &CreateTracerouteDto,
    ) -> Result<Vec<TracerouteDto>, ClientError> {
        let body = serde_json::to_vec(spec).map_err(ClientError::Decode)?;
        let (status, resp) = self.request("POST", "/api/v2/traceroutes", Some(&body))?;
        if status != 200 {
            return Err(ClientError::Status(
                status,
                String::from_utf8_lossy(&resp).into_owned(),
            ));
        }
        serde_json::from_slice(&resp).map_err(ClientError::Decode)
    }

    /// `GET /api/v2/credits`.
    pub fn credits(&self) -> Result<u64, ClientError> {
        let v: serde_json::Value = self.get_json("/api/v2/credits")?;
        v["balance"]
            .as_u64()
            .ok_or_else(|| ClientError::Protocol("missing balance".into()))
    }
}

/// Whether a client error means the peer dropped the connection —
/// the cases where retrying an idempotent request on a fresh
/// connection is safe and likely to succeed.
fn dropped_connection(e: &ClientError) -> bool {
    match e {
        ClientError::Io(e) => matches!(
            e.kind(),
            std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}

/// Reads one response's status line + headers, leaving the reader
/// positioned at the body. Returns `(status, content_length)`.
fn read_response_head<R: BufRead>(reader: &mut R) -> Result<(u16, Option<usize>), ClientError> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        // EOF before a single status byte: the peer closed the
        // connection (stale keep-alive, restart). Surface it as the
        // retryable io kind rather than a framing violation.
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    // One header-line scratch reused across the loop (and, for session
    // readers, across requests via the BufReader) — header counts per
    // response are small but load generators read millions of them.
    let mut line = String::with_capacity(64);
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("truncated header section".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok();
            }
        }
    }
    Ok((status, content_length))
}

/// A persistent keep-alive connection to the server.
///
/// Requests are issued sequentially over one TCP connection, so a tight
/// request loop pays no per-request connect/teardown — this is what the
/// `api_load` bench drives. Responses must carry `content-length`
/// (ours always do); the connection is unusable after an error.
pub struct ApiSession {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    timeout: Duration,
}

impl ApiSession {
    /// Connects a session to the server.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects a session with an explicit connect + read/write
    /// timeout — load harnesses opening thousands of sessions cannot
    /// afford the OS-default connect timeout when a server stalls.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            addr,
            timeout,
        })
    }

    /// Replaces the underlying TCP connection with a fresh one to the
    /// same address, using the session's configured timeouts. Any
    /// buffered bytes from the dead connection are discarded.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        *self = Self::connect_with_timeout(self.addr, self.timeout)?;
        Ok(())
    }

    /// Issues one request on the persistent connection and returns
    /// `(status, body)`.
    ///
    /// Idempotent `GET`s are retried exactly once after a transparent
    /// [`reconnect`](Self::reconnect) when the peer drops the socket —
    /// the stale-keep-alive race where the server idle-closed between
    /// two requests. Other methods leave the session unusable on error.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        match self.request_once(method, path_and_query, body) {
            Err(e) if method == "GET" && dropped_connection(&e) => {
                self.reconnect()?;
                self.request_once(method, path_and_query, body)
            }
            r => r,
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        if !body.is_empty() {
            self.writer.write_all(body)?;
        }
        self.writer.flush()?;
        let (status, content_length) = read_response_head(&mut self.reader)?;
        let len = content_length
            .ok_or_else(|| ClientError::Protocol("keep-alive response without content-length".into()))?;
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf)?;
        Ok((status, buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ApiServer;
    use crate::service::AtlasService;
    use shears_atlas::{Platform, PlatformConfig};

    fn server() -> ApiServer {
        let platform = Platform::build(&PlatformConfig::quick(8));
        ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform)).unwrap()
    }

    #[test]
    fn full_client_round_trip() {
        let server = server();
        let client = ApiClient::new(server.local_addr());

        let regions = client.list_regions().unwrap();
        assert_eq!(regions.len(), 101);

        let probes = client.list_probes(Some("US"), None, 20).unwrap();
        assert!(!probes.is_empty());
        let one = client.get_probe(probes[0].id).unwrap();
        assert_eq!(one.country_code, "US");

        let before = client.credits().unwrap();
        let m = client
            .create_measurement(&CreateMeasurementDto {
                target_region: regions[0].index,
                packets: 3,
                rounds: 1,
                probe_limit: 8,
                country: None,
                fault_profile: None,
                retries: None,
                durability: true,
            })
            .unwrap();
        assert!(m.results > 0);
        let after = client.credits().unwrap();
        assert!(after < before);

        let results = client.results(m.id).unwrap();
        assert_eq!(results.len(), m.results);
        assert!(results.iter().any(|r| r.min_ms.unwrap_or(f64::NAN) > 0.0));
        server.shutdown().unwrap();
    }

    #[test]
    fn error_statuses_surface_as_typed_errors() {
        let server = server();
        let client = ApiClient::new(server.local_addr());
        match client.get_probe(10_000_000) {
            Err(ClientError::Status(404, body)) => assert!(body.contains("no such probe")),
            other => panic!("expected 404, got {other:?}"),
        }
        match client.results(424242) {
            Err(ClientError::Status(404, _)) => {}
            other => panic!("expected 404, got {other:?}"),
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn session_issues_many_requests_on_one_connection() {
        let server = server();
        // Seed through the service directly (not the JSON surface) so
        // the keep-alive framing is exercised under the offline serde
        // stub too.
        let created = server.service().create_from_spec(&CreateMeasurementDto {
            target_region: 0,
            packets: 3,
            rounds: 1,
            probe_limit: 5,
            country: None,
            fault_profile: None,
            retries: None,
            durability: true,
        });
        assert_eq!(created.status, 201);
        let json = serde_json::to_vec(&0u8).map_or(false, |v| !v.is_empty());

        let mut session = ApiSession::connect(server.local_addr()).unwrap();
        for path in [
            "/api/v2/credits",
            "/api/v2/measurements",
            "/api/v2/measurements/1",
            "/api/v2/measurements/1/stats",
            "/api/v2/credits",
        ] {
            let (status, body) = session.request("GET", path, None).unwrap();
            assert_eq!(status, 200, "{path}");
            // The offline stub serialises every body to zero bytes.
            if json {
                assert!(!body.is_empty(), "{path}");
            }
        }
        // Typed listing agrees with the session's raw view.
        if json {
            let client = ApiClient::new(server.local_addr());
            let listed = client.list_measurements().unwrap();
            assert_eq!(listed.len(), 1);
            assert_eq!(listed[0].id, 1);
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn session_get_survives_a_stale_keep_alive_close() {
        use crate::server::ServerConfig;
        let platform = Platform::build(&PlatformConfig::quick(8));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig::reactor(1, 2, 16).with_idle_timeout(Duration::from_millis(120)),
        )
        .unwrap();

        let mut session = ApiSession::connect(server.local_addr()).unwrap();
        let (status, _) = session.request("GET", "/api/v2/credits", None).unwrap();
        assert_eq!(status, 200);

        // Let the server idle-close the connection under us, then issue
        // another GET: the session must reconnect and retry on its own.
        std::thread::sleep(Duration::from_millis(400));
        let (status, _) = session.request("GET", "/api/v2/credits", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown().unwrap();
    }

    #[test]
    fn session_post_is_not_retried_after_a_dead_connection() {
        use crate::server::ServerConfig;
        let platform = Platform::build(&PlatformConfig::quick(8));
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            AtlasService::new(platform),
            ServerConfig::reactor(1, 2, 16).with_idle_timeout(Duration::from_millis(120)),
        )
        .unwrap();

        let mut session = ApiSession::connect(server.local_addr()).unwrap();
        let (status, _) = session.request("GET", "/api/v2/credits", None).unwrap();
        assert_eq!(status, 200);

        std::thread::sleep(Duration::from_millis(400));
        // A POST on the stale connection must surface the error — it is
        // not safe to replay blindly.
        match session.request("POST", "/api/v2/traceroutes", Some(b"{}")) {
            Err(e) => assert!(dropped_connection(&e), "unexpected error class: {e}"),
            Ok((status, _)) => panic!("stale POST unexpectedly succeeded with {status}"),
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = server();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = ApiClient::new(addr);
                    client.list_probes(None, None, 5).unwrap().len()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        server.shutdown().unwrap();
    }
}
