//! Property-based hardening of the HTTP layer: arbitrary bytes must
//! never panic the parser, and well-formed requests must round-trip.

use std::collections::BTreeMap;
use std::io::BufReader;

use proptest::prelude::*;
use shears_api::http::{percent_decode, read_request, Headers, HttpError, Method, Request, Response};

proptest! {
    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Whatever arrives on the socket, the outcome is a Request or a
        // typed error — panicking would kill the connection thread.
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = read_request(&mut reader);
    }

    #[test]
    fn parser_never_panics_on_garbage_text(text in "[ -~\r\n]{0,512}") {
        let mut reader = BufReader::new(text.as_bytes());
        let _ = read_request(&mut reader);
    }

    #[test]
    fn well_formed_requests_parse_exactly(
        path_segments in proptest::collection::vec("[a-z0-9]{1,10}", 1..5),
        query_pairs in proptest::collection::vec(("[a-z]{1,8}", "[a-z0-9]{0,8}"), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let path = format!("/{}", path_segments.join("/"));
        let query: String = query_pairs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&");
        let target = if query.is_empty() {
            path.clone()
        } else {
            format!("{path}?{query}")
        };
        let mut raw = format!(
            "POST {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let req = read_request(&mut BufReader::new(raw.as_slice())).expect("well-formed");
        prop_assert_eq!(req.method, Method::Post);
        prop_assert_eq!(&req.path, &path);
        prop_assert_eq!(&req.body, &body);
        // Last-wins query semantics: every key present.
        for (k, _) in &query_pairs {
            prop_assert!(req.query.contains_key(k.as_str()), "missing key {k}");
        }
        let expected_segments: Vec<&str> = path_segments.iter().map(String::as_str).collect();
        prop_assert_eq!(req.segments(), expected_segments);
    }

    #[test]
    fn responses_always_frame_correctly(
        status in prop_oneof![Just(200u16), Just(201), Just(400), Just(404), Just(500)],
        body in proptest::collection::vec(any::<u8>(), 0..512),
        keep_alive in any::<bool>(),
    ) {
        let mut resp = Response::status(status);
        resp.body = body.clone();
        let mut buf = bytes::BytesMut::new();
        resp.write_into(&mut buf, keep_alive);
        let text = buf.to_vec();
        // Head ends with CRLFCRLF and the body follows verbatim.
        let sep = text
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head/body separator");
        prop_assert_eq!(&text[sep + 4..], body.as_slice());
        let head = String::from_utf8_lossy(&text[..sep]).into_owned();
        let status_ok = head.starts_with(&format!("HTTP/1.1 {status} "));
        let length_ok = head.contains(&format!("content-length: {}", body.len()));
        let conn_token = if keep_alive { "keep-alive" } else { "close" };
        let conn_ok = head.contains(conn_token);
        prop_assert!(status_ok, "bad status line in {head}");
        prop_assert!(length_ok, "bad content-length in {head}");
        prop_assert!(conn_ok, "missing {conn_token} in {head}");
    }

    #[test]
    fn percent_decode_is_total_and_idempotent_on_plain_text(s in "[a-zA-Z0-9._~-]{0,64}") {
        // Unreserved characters pass through untouched.
        prop_assert_eq!(percent_decode(&s), s);
    }

    #[test]
    fn declared_content_length_governs_body(extra in 1usize..64) {
        // A request declaring less body than sent: the parser reads
        // exactly the declared bytes and leaves the rest (pipelining).
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc{}",
            "y".repeat(extra)
        );
        let mut reader = BufReader::new(raw.as_bytes());
        let req = read_request(&mut reader).expect("parses");
        prop_assert_eq!(req.body, b"abc".to_vec());
    }
}

#[test]
fn keep_alive_defaults_follow_http11() {
    let req = Request {
        method: Method::Get,
        path: "/".into(),
        query: BTreeMap::new(),
        headers: Headers::default(),
        body: Vec::new(),
    };
    assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
}

#[test]
fn oversized_declarations_are_rejected_not_allocated() {
    let raw = "POST /x HTTP/1.1\r\ncontent-length: 18446744073709551615\r\n\r\n";
    let mut reader = BufReader::new(raw.as_bytes());
    match read_request(&mut reader) {
        Err(HttpError::BadRequest(_)) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
}
