//! # shears-trends
//!
//! The retrospective of §2 / Figure 1: yearly series (2004–2019) of web
//! search interest and scientific publications for "cloud computing"
//! and "edge computing", plus the era segmentation (CDN → Cloud → Edge)
//! the figure illustrates.
//!
//! The paper built Figure 1 from Google Trends and a Google Scholar
//! crawl; neither is reachable from a reproduction, so [`series`]
//! synthesises the curves from logistic adoption models whose
//! parameters encode the qualitative shape the paper describes (cloud
//! takes off around 2008 and plateaus; edge emerges around 2015 and is
//! still accelerating in 2019). [`eras`] then *recovers* the three eras
//! from the data alone with a CUSUM changepoint detector — the analysis
//! is real even though the input is synthetic.
//!
//! ```
//! use shears_trends::{series::TrendDataset, eras::detect_eras};
//!
//! let data = TrendDataset::figure1(42);
//! let eras = detect_eras(&data);
//! assert_eq!(eras.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawler;
pub mod eras;
pub mod series;

pub use crawler::{crawl_publications, parse_result_count, ScholarService};
pub use eras::{detect_eras, Era, EraSpan};
pub use series::{Keyword, Metric, TrendDataset, TrendSeries};
