//! Synthetic Figure-1 time series.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// First year of the figure's x-axis.
pub const FIRST_YEAR: u16 = 2004;
/// Last year of the figure's x-axis.
pub const LAST_YEAR: u16 = 2019;

/// Which keyword a series tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Keyword {
    /// "cloud computing".
    CloudComputing,
    /// "edge computing".
    EdgeComputing,
}

impl Keyword {
    /// The literal search phrase.
    pub fn phrase(self) -> &'static str {
        match self {
            Keyword::CloudComputing => "cloud computing",
            Keyword::EdgeComputing => "edge computing",
        }
    }
}

/// Which signal a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Google-Trends-style web search interest (0–100 normalised).
    SearchInterest,
    /// Scholar-crawl publication counts per year.
    Publications,
}

/// One yearly series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendSeries {
    /// The tracked keyword.
    pub keyword: Keyword,
    /// The measured signal.
    pub metric: Metric,
    /// Values for 2004..=2019, in year order.
    pub values: Vec<f64>,
}

impl TrendSeries {
    /// The years axis shared by all series.
    pub fn years() -> impl Iterator<Item = u16> {
        FIRST_YEAR..=LAST_YEAR
    }

    /// Value for a specific year, if within range.
    pub fn at(&self, year: u16) -> Option<f64> {
        if (FIRST_YEAR..=LAST_YEAR).contains(&year) {
            self.values.get((year - FIRST_YEAR) as usize).copied()
        } else {
            None
        }
    }

    /// Year of the series' maximum.
    pub fn peak_year(&self) -> u16 {
        let (idx, _) = self
            .values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("series is non-empty");
        FIRST_YEAR + idx as u16
    }
}

/// Logistic adoption curve: `scale / (1 + exp(-rate (year - midpoint)))`.
fn logistic(year: f64, midpoint: f64, rate: f64, scale: f64) -> f64 {
    scale / (1.0 + (-(rate) * (year - midpoint)).exp())
}

/// The four series of Figure 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendDataset {
    /// Cloud search interest (dashed red in the figure).
    pub cloud_search: TrendSeries,
    /// Edge search interest (solid red).
    pub edge_search: TrendSeries,
    /// Cloud publications (dashed blue).
    pub cloud_pubs: TrendSeries,
    /// Edge publications (solid blue).
    pub edge_pubs: TrendSeries,
}

impl TrendDataset {
    /// Generates the dataset with mild multiplicative noise (`seed`
    /// fixes it). The parameters encode the paper's narrative:
    /// cloud interest takes off ~2008, peaks ~2011 and declines gently
    /// (Trends normalises to the peak); edge interest emerges ~2015 and
    /// is still rising in 2019. Publications lag interest and keep
    /// growing (cumulative research output does not decline).
    pub fn figure1(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let noisy = |v: f64, rng: &mut SmallRng| {
            (v * (1.0 + 0.05 * (rng.gen::<f64>() - 0.5))).max(0.0)
        };
        let gen = |f: &dyn Fn(f64) -> f64, keyword, metric, rng: &mut SmallRng| TrendSeries {
            keyword,
            metric,
            values: (FIRST_YEAR..=LAST_YEAR)
                .map(|y| noisy(f(f64::from(y)), rng))
                .collect(),
        };
        let cloud_search = gen(
            &|y| {
                // Ramp to 100 by ~2011, then slow linear decline to ~60:
                // the familiar Google-Trends shape for a matured term.
                let rise = logistic(y, 2009.0, 1.4, 100.0);
                let decline = if y > 2011.0 { (y - 2011.0) * 4.5 } else { 0.0 };
                (rise - decline).max(0.0)
            },
            Keyword::CloudComputing,
            Metric::SearchInterest,
            &mut rng,
        );
        let edge_search = gen(
            &|y| logistic(y, 2018.2, 0.9, 70.0),
            Keyword::EdgeComputing,
            Metric::SearchInterest,
            &mut rng,
        );
        let cloud_pubs = gen(
            &|y| logistic(y, 2012.5, 0.75, 24_000.0),
            Keyword::CloudComputing,
            Metric::Publications,
            &mut rng,
        );
        let edge_pubs = gen(
            &|y| logistic(y, 2018.5, 1.1, 9_000.0),
            Keyword::EdgeComputing,
            Metric::Publications,
            &mut rng,
        );
        Self {
            cloud_search,
            edge_search,
            cloud_pubs,
            edge_pubs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_cover_the_figure_axis() {
        let d = TrendDataset::figure1(1);
        for s in [&d.cloud_search, &d.edge_search, &d.cloud_pubs, &d.edge_pubs] {
            assert_eq!(s.values.len(), 16);
            assert!(s.values.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn cloud_peaks_before_edge_rises() {
        let d = TrendDataset::figure1(2);
        let cloud_peak = d.cloud_search.peak_year();
        assert!((2010..=2013).contains(&cloud_peak), "cloud peak {cloud_peak}");
        // Edge is still climbing at the end of the window.
        assert_eq!(d.edge_search.peak_year(), 2019);
        assert_eq!(d.edge_pubs.peak_year(), 2019);
    }

    #[test]
    fn edge_is_negligible_before_2014() {
        let d = TrendDataset::figure1(3);
        for year in 2004..=2013 {
            let edge = d.edge_search.at(year).unwrap();
            let cloud_peak = 100.0;
            assert!(
                edge < 0.1 * cloud_peak,
                "{year}: edge {edge} not negligible"
            );
        }
    }

    #[test]
    fn publications_lag_and_keep_growing() {
        let d = TrendDataset::figure1(4);
        // Cloud publications never collapse the way search interest does.
        let v2019 = d.cloud_pubs.at(2019).unwrap();
        let peak = d.cloud_pubs.values.iter().fold(0.0_f64, |a, &b| a.max(b));
        assert!(v2019 > 0.85 * peak);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TrendDataset::figure1(9);
        let b = TrendDataset::figure1(9);
        assert_eq!(a.edge_search.values, b.edge_search.values);
        let c = TrendDataset::figure1(10);
        assert_ne!(a.edge_search.values, c.edge_search.values);
    }

    #[test]
    fn at_rejects_out_of_range_years() {
        let d = TrendDataset::figure1(5);
        assert!(d.cloud_search.at(2003).is_none());
        assert!(d.cloud_search.at(2020).is_none());
        assert!(d.cloud_search.at(2010).is_some());
    }
}
