//! Era segmentation: recovering "CDN → Cloud → Edge" from the series.
//!
//! §2: "three eras can be distinguished: content delivery networks
//! (CDN), cloud, and edge". We recover the two boundaries from the
//! data with a CUSUM-style changepoint detector on each keyword's
//! take-off, rather than hard-coding years: the cloud era begins at the
//! changepoint of cloud search interest, the edge era at the
//! changepoint of edge search interest.

use serde::{Deserialize, Serialize};

use crate::series::{TrendDataset, TrendSeries, FIRST_YEAR, LAST_YEAR};

/// One of the three eras of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Era {
    /// Edge servers as CDN caches (early 2000s).
    Cdn,
    /// Centralised elastic datacenters.
    Cloud,
    /// Cloudlets/fog/edge computing.
    Edge,
}

impl Era {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Era::Cdn => "CDN era",
            Era::Cloud => "Cloud era",
            Era::Edge => "Edge era",
        }
    }
}

/// A contiguous span of years belonging to one era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EraSpan {
    /// The era.
    pub era: Era,
    /// First year (inclusive).
    pub from: u16,
    /// Last year (inclusive).
    pub to: u16,
}

/// Finds the changepoint (index) of a series' take-off using an offset
/// CUSUM: the year where the cumulative excess over the global mean is
/// most negative marks the end of the low regime; the changepoint is
/// the following year. Returns `None` for an (almost) flat series.
pub fn cusum_changepoint(values: &[f64]) -> Option<usize> {
    if values.len() < 3 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let spread = values.iter().fold(0.0_f64, |a, &v| a.max((v - mean).abs()));
    if spread < 1e-9 || mean <= 0.0 || spread < 0.05 * mean {
        return None; // flat: no regime change
    }
    let mut cum = 0.0;
    let mut min = f64::INFINITY;
    let mut argmin = 0;
    for (i, &v) in values.iter().enumerate() {
        cum += v - mean;
        if cum < min {
            min = cum;
            argmin = i;
        }
    }
    let cp = argmin + 1;
    if cp >= values.len() {
        None
    } else {
        Some(cp)
    }
}

/// Changepoint of a trend series, as a calendar year.
pub fn takeoff_year(series: &TrendSeries) -> Option<u16> {
    cusum_changepoint(&series.values).map(|i| FIRST_YEAR + i as u16)
}

/// Segments the figure's window into the three eras.
///
/// The Cloud era starts at the cloud-search take-off, the Edge era at
/// the edge-search take-off; whatever precedes the cloud take-off is
/// the CDN era. Take-offs that cannot be detected fall back to the
/// paper's nominal years (2008, 2015).
pub fn detect_eras(data: &TrendDataset) -> Vec<EraSpan> {
    let cloud_start = takeoff_year(&data.cloud_search).unwrap_or(2008);
    let edge_start = takeoff_year(&data.edge_search)
        .unwrap_or(2015)
        .max(cloud_start + 1);
    vec![
        EraSpan {
            era: Era::Cdn,
            from: FIRST_YEAR,
            to: cloud_start - 1,
        },
        EraSpan {
            era: Era::Cloud,
            from: cloud_start,
            to: edge_start - 1,
        },
        EraSpan {
            era: Era::Edge,
            from: edge_start,
            to: LAST_YEAR,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TrendDataset;

    #[test]
    fn cusum_finds_an_obvious_step() {
        let values = [1.0, 1.0, 1.0, 1.0, 10.0, 10.0, 10.0];
        assert_eq!(cusum_changepoint(&values), Some(4));
    }

    #[test]
    fn cusum_rejects_flat_series() {
        assert_eq!(cusum_changepoint(&[5.0; 10]), None);
        assert_eq!(cusum_changepoint(&[5.0, 5.01, 4.99, 5.0]), None);
        assert_eq!(cusum_changepoint(&[1.0, 2.0]), None);
    }

    #[test]
    fn eras_cover_the_window_contiguously() {
        let data = TrendDataset::figure1(7);
        let eras = detect_eras(&data);
        assert_eq!(eras.len(), 3);
        assert_eq!(eras[0].era, Era::Cdn);
        assert_eq!(eras[1].era, Era::Cloud);
        assert_eq!(eras[2].era, Era::Edge);
        assert_eq!(eras[0].from, 2004);
        assert_eq!(eras[2].to, 2019);
        for w in eras.windows(2) {
            assert_eq!(w[0].to + 1, w[1].from, "gap between eras");
        }
    }

    #[test]
    fn boundaries_land_near_the_papers_narrative() {
        // Cloudlets (2009) started the edge era per §2; the cloud era
        // began in the late 2000s. Allow a ±2-year window on each.
        let data = TrendDataset::figure1(11);
        let eras = detect_eras(&data);
        let cloud_start = eras[1].from;
        let edge_start = eras[2].from;
        assert!(
            (2006..=2010).contains(&cloud_start),
            "cloud era starts {cloud_start}"
        );
        assert!(
            (2014..=2018).contains(&edge_start),
            "edge era starts {edge_start}"
        );
    }

    #[test]
    fn detection_is_stable_across_seeds() {
        let spans: Vec<Vec<EraSpan>> = (0..10)
            .map(|s| detect_eras(&TrendDataset::figure1(s)))
            .collect();
        for eras in &spans {
            let d = (eras[1].from as i32 - spans[0][1].from as i32).abs();
            assert!(d <= 2, "cloud boundary jitters by {d} years");
        }
    }

    #[test]
    fn era_names() {
        assert_eq!(Era::Cdn.name(), "CDN era");
        assert_eq!(Era::Edge.name(), "Edge era");
    }
}
