//! The scholar crawler, reproduced.
//!
//! Figure 1's publication counts came from "a custom web crawler for
//! Google Scholar, based on an open source implementation" (the paper's
//! reference 38, `scholar.py`). Scholar is not reachable from a
//! reproduction, so this module builds both halves: a synthetic scholar
//! *service* that renders result pages the way the real one does
//! (including its quirks — thousands separators, "About" prefixes,
//! rate-limiting CAPTCHAs), and the *crawler* that queries it year by
//! year, parses the hit counts and backs off when throttled.
//!
//! The test pins the end-to-end property that matters: the crawler's
//! output equals the ground truth the service was seeded with — which
//! is exactly the assumption Fig. 1 makes about its own data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::series::{Keyword, Metric, TrendDataset, TrendSeries, FIRST_YEAR, LAST_YEAR};

/// A synthetic scholar service: renders result pages for
/// `"<phrase>" year:Y` queries from a fixed ground-truth table.
pub struct ScholarService {
    cloud_by_year: Vec<u64>,
    edge_by_year: Vec<u64>,
    /// Probability a request is met with a CAPTCHA interstitial.
    throttle_probability: f64,
    rng: SmallRng,
    requests_served: u64,
}

/// A page returned by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScholarPage {
    /// A normal result page (HTML).
    Results(String),
    /// The rate-limit interstitial.
    Captcha,
}

impl ScholarService {
    /// Builds the service from a trend dataset's publication series
    /// (the ground truth the crawler should recover).
    pub fn from_dataset(data: &TrendDataset, throttle_probability: f64, seed: u64) -> Self {
        let round = |s: &TrendSeries| s.values.iter().map(|v| v.round() as u64).collect();
        Self {
            cloud_by_year: round(&data.cloud_pubs),
            edge_by_year: round(&data.edge_pubs),
            throttle_probability,
            rng: SmallRng::seed_from_u64(seed),
            requests_served: 0,
        }
    }

    /// Total requests handled (including throttled ones).
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Ground-truth count for a query (what the crawler should recover).
    pub fn ground_truth(&self, keyword: Keyword, year: u16) -> Option<u64> {
        if !(FIRST_YEAR..=LAST_YEAR).contains(&year) {
            return None;
        }
        let idx = (year - FIRST_YEAR) as usize;
        match keyword {
            Keyword::CloudComputing => self.cloud_by_year.get(idx).copied(),
            Keyword::EdgeComputing => self.edge_by_year.get(idx).copied(),
        }
    }

    /// Serves one query, possibly throttling.
    pub fn query(&mut self, keyword: Keyword, year: u16) -> ScholarPage {
        self.requests_served += 1;
        if self.rng.gen::<f64>() < self.throttle_probability {
            return ScholarPage::Captcha;
        }
        let count = self.ground_truth(keyword, year).unwrap_or(0);
        // Render with the service's real-world formatting quirks:
        // grouped digits and an "About" prefix for larger counts.
        let rendered = if count >= 1000 {
            format!("About {} results", group_thousands(count))
        } else {
            format!("{count} results")
        };
        ScholarPage::Results(format!(
            "<html><head><title>{phrase} - Scholar</title></head><body>\
             <div id=\"gs_ab_md\"><div class=\"gs_ab_mdw\">{rendered} (0.07 sec)</div></div>\
             <div class=\"gs_r\">…</div></body></html>",
            phrase = keyword.phrase(),
        ))
    }
}

fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Extracts the hit count from a result page ("About 23,400 results
/// (0.07 sec)" → 23400). Returns `None` when the marker is missing.
pub fn parse_result_count(html: &str) -> Option<u64> {
    let marker = html.find("results")?;
    // Walk backwards from "results" collecting the number.
    let head = &html[..marker];
    let digits: String = head
        .chars()
        .rev()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == ',')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .filter(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Crawl statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Successful page fetches.
    pub fetched: u32,
    /// CAPTCHA hits that forced a retry.
    pub throttled: u32,
}

/// Crawls publication counts for a keyword over the figure's year
/// range, retrying throttled requests up to `max_retries` times each.
/// Returns the recovered series plus crawl statistics, or `None` if a
/// year could not be fetched within the retry budget.
pub fn crawl_publications(
    service: &mut ScholarService,
    keyword: Keyword,
    max_retries: u32,
) -> Option<(TrendSeries, CrawlStats)> {
    let mut values = Vec::new();
    let mut stats = CrawlStats::default();
    for year in FIRST_YEAR..=LAST_YEAR {
        let mut got = None;
        for _attempt in 0..=max_retries {
            match service.query(keyword, year) {
                ScholarPage::Results(html) => {
                    got = parse_result_count(&html);
                    stats.fetched += 1;
                    break;
                }
                ScholarPage::Captcha => {
                    stats.throttled += 1;
                }
            }
        }
        values.push(got? as f64);
    }
    Some((
        TrendSeries {
            keyword,
            metric: Metric::Publications,
            values,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(throttle: f64) -> ScholarService {
        ScholarService::from_dataset(&TrendDataset::figure1(11), throttle, 5)
    }

    #[test]
    fn parser_handles_the_services_formats() {
        assert_eq!(
            parse_result_count("<div>About 23,400 results (0.07 sec)</div>"),
            Some(23_400)
        );
        assert_eq!(parse_result_count("<div>7 results</div>"), Some(7));
        assert_eq!(
            parse_result_count("About 1,234,567 results"),
            Some(1_234_567)
        );
        assert_eq!(parse_result_count("no counts here"), None);
        assert_eq!(parse_result_count(""), None);
    }

    #[test]
    fn grouping_matches_locale_convention() {
        assert_eq!(group_thousands(7), "7");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(23400), "23,400");
        assert_eq!(group_thousands(1234567), "1,234,567");
    }

    #[test]
    fn crawl_recovers_ground_truth_exactly() {
        let mut svc = service(0.0);
        for keyword in [Keyword::CloudComputing, Keyword::EdgeComputing] {
            let (series, stats) = crawl_publications(&mut svc, keyword, 0).unwrap();
            assert_eq!(stats.throttled, 0);
            assert_eq!(stats.fetched, 16);
            for (i, year) in (FIRST_YEAR..=LAST_YEAR).enumerate() {
                let truth = svc.ground_truth(keyword, year).unwrap();
                assert_eq!(series.values[i] as u64, truth, "{keyword:?} {year}");
            }
        }
    }

    #[test]
    fn crawl_survives_throttling_with_retries() {
        let mut svc = service(0.4);
        let (series, stats) =
            crawl_publications(&mut svc, Keyword::CloudComputing, 50).unwrap();
        assert!(stats.throttled > 0, "40% throttle must bite");
        assert_eq!(series.values.len(), 16);
        // Recovered counts still match ground truth (retries, not guesses).
        for (i, year) in (FIRST_YEAR..=LAST_YEAR).enumerate() {
            assert_eq!(
                series.values[i] as u64,
                svc.ground_truth(Keyword::CloudComputing, year).unwrap()
            );
        }
    }

    #[test]
    fn crawl_fails_cleanly_when_fully_throttled() {
        let mut svc = service(1.0);
        assert!(crawl_publications(&mut svc, Keyword::EdgeComputing, 3).is_none());
        assert!(svc.requests_served() > 0);
    }

    #[test]
    fn recovered_series_feeds_era_detection() {
        // End-to-end: crawl -> series -> the same era boundaries as the
        // ground-truth dataset.
        let data = TrendDataset::figure1(11);
        let mut svc = ScholarService::from_dataset(&data, 0.1, 9);
        let (cloud, _) = crawl_publications(&mut svc, Keyword::CloudComputing, 20).unwrap();
        let (edge, _) = crawl_publications(&mut svc, Keyword::EdgeComputing, 20).unwrap();
        let crawled = TrendDataset {
            cloud_search: data.cloud_search.clone(),
            edge_search: data.edge_search.clone(),
            cloud_pubs: cloud,
            edge_pubs: edge,
        };
        let a = crate::eras::detect_eras(&data);
        let b = crate::eras::detect_eras(&crawled);
        assert_eq!(a, b, "crawled data must reproduce the era split");
    }

    #[test]
    fn out_of_range_years_have_no_truth() {
        let svc = service(0.0);
        assert!(svc.ground_truth(Keyword::CloudComputing, 2003).is_none());
        assert!(svc.ground_truth(Keyword::CloudComputing, 2020).is_none());
    }
}
