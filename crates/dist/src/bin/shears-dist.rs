//! Distributed campaign runner: one coordinator, any number of worker
//! processes, localhost or LAN.
//!
//! ```sh
//! # terminal 1 — the coordinator (plans shards, serves /api/v2/work/*,
//! # merges):
//! cargo run --release -p shears-dist --bin shears-dist -- \
//!     coordinator --listen 127.0.0.1:4790 --rounds 10 --shards 4
//!
//! # terminals 2..n — workers (same --platform-seed, or the digest
//! # handshake refuses them):
//! cargo run --release -p shears-dist --bin shears-dist -- \
//!     worker --connect 127.0.0.1:4790 --wal /tmp/shears-w1
//! ```
//!
//! Workers default to the pipelined binary stream transport
//! (`--transport tcp`, in-flight window `--window 8`); pass
//! `--transport http` for the blocking request/response shim.
//!
//! The coordinator exits when every round is merged (bit-identical to
//! a sequential run) and prints the robustness counters; workers exit
//! when told `Done` or `Abort`. Kill a worker mid-campaign and restart
//! it with the same `--wal` directory to watch it resume its shard
//! from its journal.

use std::net::SocketAddr;
use std::time::Duration;

use shears_api::server::{ApiServer, ServerConfig};
use shears_api::service::AtlasService;
use shears_atlas::{CampaignConfig, Platform, PlatformConfig};
use shears_dist::{
    run_worker_stats, ChaosProxy, Coordinator, DistConfig, WorkTransport, WorkerConfig, WorkerExit,
    WorkerStats,
};

struct Args {
    listen: String,
    connect: SocketAddr,
    platform_seed: u64,
    campaign_seed: u64,
    rounds: u32,
    shards: u32,
    degraded: bool,
    wal: String,
    restart: bool,
    transport: WorkTransport,
    window: usize,
}

fn parse_args(it: &mut std::env::Args) -> Args {
    let mut args = Args {
        listen: "127.0.0.1:4790".into(),
        connect: "127.0.0.1:4790".parse().unwrap(),
        platform_seed: 7,
        campaign_seed: CampaignConfig::quick().seed,
        rounds: 10,
        shards: 4,
        degraded: false,
        wal: "shears-dist-wal".into(),
        restart: false,
        transport: WorkTransport::Tcp,
        window: 8,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = val("--listen"),
            "--connect" => args.connect = val("--connect").parse().expect("--connect: addr"),
            "--platform-seed" => {
                args.platform_seed = val("--platform-seed").parse().expect("--platform-seed: u64")
            }
            "--campaign-seed" => {
                args.campaign_seed = val("--campaign-seed").parse().expect("--campaign-seed: u64")
            }
            "--rounds" => args.rounds = val("--rounds").parse().expect("--rounds: u32"),
            "--shards" => args.shards = val("--shards").parse().expect("--shards: u32"),
            "--degraded" => args.degraded = true,
            "--wal" => args.wal = val("--wal"),
            "--restart" => args.restart = true,
            "--transport" => {
                args.transport = match val("--transport").as_str() {
                    "http" => WorkTransport::Http,
                    "tcp" => WorkTransport::Tcp,
                    other => panic!("--transport: http|tcp (got {other:?})"),
                }
            }
            "--window" => args.window = val("--window").parse().expect("--window: usize"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let mut it = std::env::args();
    let _bin = it.next();
    let mode = it.next().unwrap_or_default();
    let args = parse_args(&mut it);

    match mode.as_str() {
        "coordinator" => coordinator(args),
        "worker" => worker(args),
        other => {
            eprintln!("usage: shears-dist <coordinator|worker> [flags]  (got {other:?})");
            std::process::exit(2);
        }
    }
}

fn coordinator(args: Args) {
    let platform = Platform::build(&PlatformConfig::quick(args.platform_seed));
    let cfg = CampaignConfig {
        rounds: args.rounds,
        seed: args.campaign_seed,
        ..CampaignConfig::quick()
    };
    // Human-scale patience: workers arrive by hand, not in
    // microseconds.
    let dcfg = DistConfig {
        heartbeat_interval: Duration::from_millis(200),
        heartbeat_timeout: Duration::from_secs(3),
        round_timeout: Duration::from_secs(10),
        stall_grace: Duration::from_secs(30),
        degraded_completion: args.degraded,
        ..DistConfig::quick(args.shards)
    };
    let coordinator = Coordinator::new(&platform, cfg, dcfg);
    let service = AtlasService::new(Platform::build(&PlatformConfig::quick(args.platform_seed)))
        .with_work_queue(coordinator.queue());
    let server = ApiServer::spawn_with(&args.listen, service, ServerConfig::reactor(1, 4, 64))
        .expect("listen failed");
    println!("coordinator listening on {}", server.local_addr());
    println!(
        "{} shards x {} rounds; waiting for workers (--platform-seed {})",
        coordinator.queue().spec().shard_count,
        args.rounds,
        args.platform_seed
    );
    match coordinator.run() {
        Ok(outcome) => {
            let m = outcome.metrics;
            println!(
                "merged {} samples, {} credits spent ({} refunded)",
                outcome.store.len(),
                outcome.ledger.spent(),
                outcome.ledger.refunded()
            );
            println!(
                "workers registered {}, heartbeats missed {}, shards reassigned {}, \
                 rounds retried {}, duplicates dropped {}, lost rounds {}",
                m.workers_registered,
                m.heartbeats_missed,
                m.shards_reassigned,
                m.rounds_retried,
                m.duplicate_frames_dropped,
                m.lost_rounds
            );
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    }
    // Linger a couple of poll intervals before tearing the server
    // down: idle workers poll every heartbeat_interval, and each must
    // observe Done on the wire to exit cleanly rather than tripping
    // over a closed socket.
    std::thread::sleep(dcfg.heartbeat_interval * 2 + Duration::from_millis(100));
    server.shutdown().expect("shutdown failed");
}

fn worker(args: Args) {
    let platform = Platform::build(&PlatformConfig::quick(args.platform_seed));
    let wcfg = WorkerConfig {
        transport: args.transport,
        window: args.window,
        ..WorkerConfig::new(&args.wal)
    };
    let mut chaos = ChaosProxy::none();
    let mut total = WorkerStats::default();
    loop {
        let outcome = run_worker_stats(args.connect, &platform, &wcfg, &mut chaos);
        if let Ok((_, stats)) = &outcome {
            total.absorb(*stats);
        }
        match outcome.map(|(exit, _)| exit) {
            Ok(WorkerExit::Done) => {
                println!(
                    "campaign complete ({} frames sent, {} blocking waits, {} reconnects)",
                    total.frames_sent, total.blocking_waits, total.stream_reconnects
                );
                return;
            }
            Ok(WorkerExit::Aborted) => {
                eprintln!("coordinator aborted the campaign");
                std::process::exit(1);
            }
            Ok(WorkerExit::Killed) => unreachable!("no chaos scheduled"),
            Err(e) if args.restart => {
                eprintln!("worker error ({e}); reconnecting in 1s");
                std::thread::sleep(Duration::from_secs(1));
            }
            Err(e) => {
                eprintln!("worker failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
