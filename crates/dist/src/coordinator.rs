//! The coordinator: shard dispatch, failure detection, and the
//! bit-identical merge.
//!
//! The coordinator never executes a probe itself. It partitions the
//! fleet with [`Campaign::shard_ranges`], publishes the assignments
//! through a [`WorkQueue`] served at `/api/v2/work/*`, and runs a
//! bounded control loop per round: sweep the failure detector, wait
//! (with a timeout — no coordinator thread ever blocks past its
//! configured deadline) for every shard to deliver the round, and
//! merge in shard order. Credits settle at the round barrier —
//! `debit(Σgross)` then `refund(Σrefund)` — exactly like the durable
//! runner, so the final store *and* ledger are byte-identical to a
//! sequential [`Campaign::run`].
//!
//! When every worker is dead and nothing has arrived for a grace
//! period, the campaign is stalled. Two policies:
//!
//! - **degraded completion** ([`DistConfig::degraded_completion`] =
//!   true): missing `(shard, round)`s are written off as lost; the
//!   merge substitutes [`Campaign::lost_shard_round`] samples (every
//!   scheduled probe present, marked lost, zero credits) so the loss
//!   is *attributed* in the output rather than silently absent.
//! - **strict** (= false): the queue aborts — surviving workers see
//!   `Abort` and exit — and [`Coordinator::run`] returns
//!   [`DistError::Stalled`] naming the round and the missing shards.

use std::sync::Arc;
use std::time::{Duration, Instant};

use shears_api::work::{WorkMetrics, WorkSpec};
use shears_api::WorkQueue;
use shears_atlas::{Campaign, CampaignConfig, CreditLedger, Platform, ResultStore, ShardContext};

use crate::DistError;

/// Distribution knobs: how the fleet is partitioned and how patient
/// the failure detector is.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Requested shard count. The real count is
    /// `Campaign::shard_ranges(shard_count).len()` — never larger,
    /// never an empty shard.
    pub shard_count: u32,
    /// How often idle workers poll / running workers heartbeat.
    pub heartbeat_interval: Duration,
    /// Worker silence after which it is declared dead and its shard
    /// freed for a survivor.
    pub heartbeat_timeout: Duration,
    /// How long an assigned shard may sit on one round before the
    /// deadline blows (decorrelated-jitter backoff, then fencing).
    pub round_timeout: Duration,
    /// Backoff floor after a blown round deadline.
    pub retry_base: Duration,
    /// Backoff ceiling.
    pub retry_cap: Duration,
    /// Blown deadlines after which the assignment is stripped even if
    /// the worker still heartbeats (wedged, not dead).
    pub max_round_retries: u32,
    /// Seed for the backoff jitter.
    pub seed: u64,
    /// `true`: finish with lost rounds attributed when the whole fleet
    /// dies; `false`: abort the campaign instead.
    pub degraded_completion: bool,
    /// How long the coordinator tolerates zero live workers and zero
    /// arriving frames before invoking the stall policy.
    pub stall_grace: Duration,
}

impl DistConfig {
    /// Localhost-test defaults: snappy heartbeats, short deadlines,
    /// strict completion.
    pub fn quick(shard_count: u32) -> Self {
        Self {
            shard_count,
            heartbeat_interval: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_millis(300),
            round_timeout: Duration::from_millis(2_000),
            retry_base: Duration::from_millis(50),
            retry_cap: Duration::from_millis(400),
            max_round_retries: 3,
            seed: 0x5EED_D157,
            degraded_completion: false,
            stall_grace: Duration::from_millis(500),
        }
    }

    /// Switches on degraded completion (finish with lost samples
    /// attributed instead of aborting when the fleet dies).
    pub fn degraded(mut self) -> Self {
        self.degraded_completion = true;
        self
    }
}

/// What a completed distributed campaign produced.
#[derive(Debug)]
pub struct DistOutcome {
    /// The merged samples — bit-identical to [`Campaign::run`] unless
    /// rounds were lost in degraded mode (and then identical except
    /// for the attributed lost samples).
    pub store: ResultStore,
    /// The settled ledger.
    pub ledger: CreditLedger,
    /// The queue's robustness counters at completion.
    pub metrics: WorkMetrics,
    /// Fleet-aggregated wire counters (filled in by the harness; a
    /// bare [`Coordinator::run`] leaves them zeroed — the coordinator
    /// never sees its workers' client-side stalls).
    pub worker_stats: crate::worker::WorkerStats,
}

/// The coordinator: owns the campaign plan and the work queue, runs
/// the merge. Serve the queue by attaching it to an
/// [`shears_api::AtlasService::with_work_queue`] and spawning an
/// [`shears_api::ApiServer`]; then call [`Coordinator::run`].
pub struct Coordinator<'p> {
    campaign: Campaign<'p>,
    cfg: CampaignConfig,
    dcfg: DistConfig,
    queue: Arc<WorkQueue>,
}

impl<'p> Coordinator<'p> {
    /// Plans the distributed campaign: partitions the fleet, freezes
    /// the [`WorkSpec`] (including the wire-format campaign header
    /// workers validate against), and builds the queue.
    pub fn new(platform: &'p Platform, cfg: CampaignConfig, dcfg: DistConfig) -> Self {
        let campaign = Campaign::new(platform, cfg);
        let ranges = campaign.shard_ranges(dcfg.shard_count as usize);
        let spec = WorkSpec {
            rounds: cfg.rounds,
            shard_count: ranges.len() as u32,
            probe_ranges: ranges.iter().map(|r| (r.start as u32, r.end as u32)).collect(),
            header_wire: campaign.journal_header().to_wire(),
            heartbeat_interval: dcfg.heartbeat_interval,
            heartbeat_timeout: dcfg.heartbeat_timeout,
            round_timeout: dcfg.round_timeout,
            retry_base: dcfg.retry_base,
            retry_cap: dcfg.retry_cap,
            max_round_retries: dcfg.max_round_retries,
            seed: dcfg.seed,
        };
        Self {
            campaign,
            cfg,
            dcfg,
            queue: Arc::new(WorkQueue::new(spec)),
        }
    }

    /// The shared work queue — attach this to the serving
    /// [`shears_api::AtlasService`].
    pub fn queue(&self) -> Arc<WorkQueue> {
        Arc::clone(&self.queue)
    }

    /// Runs the merge to completion. Blocks the calling thread, but
    /// never unboundedly: every wait is capped at the heartbeat
    /// interval, after which the failure detector sweeps and the
    /// stall policy is re-evaluated.
    pub fn run(&self) -> Result<DistOutcome, DistError> {
        let started = Instant::now();
        let rounds = self.cfg.rounds;
        let shards = self.queue.spec().shard_count;
        let tick = self.dcfg.heartbeat_interval.max(Duration::from_millis(5));
        let mut store = ResultStore::new();
        let mut ledger = CreditLedger::new(self.cfg.credits);
        // Shard contexts are only ever needed to synthesise lost
        // rounds, so they are built lazily (and their route tables
        // never are).
        let mut ctxs: Vec<Option<ShardContext>> = (0..shards).map(|_| None).collect();

        for round in 0..rounds {
            loop {
                self.queue.sweep(Instant::now());
                if self.queue.wait_round(round, tick) {
                    break;
                }
                if self.queue.aborted() {
                    return Err(DistError::Aborted);
                }
                let quiet_since = self.queue.last_accept().unwrap_or(started);
                let stalled = self.queue.live_workers() == 0
                    && Instant::now().duration_since(quiet_since) >= self.dcfg.stall_grace;
                if stalled {
                    if self.dcfg.degraded_completion {
                        for shard in self.queue.missing_for_round(round) {
                            self.queue.mark_lost(shard, round);
                        }
                    } else {
                        let missing = self.queue.missing_for_round(round);
                        self.queue.abort();
                        return Err(DistError::Stalled { round, missing });
                    }
                }
            }

            let mut gross = 0u64;
            let mut refund = 0u64;
            for shard in 0..shards {
                match self.queue.take_round(shard, round) {
                    Some(frame) => {
                        gross += frame.gross;
                        refund += frame.refund;
                        store.merge(frame.store);
                    }
                    None => {
                        // Lost round: substitute the synthesised
                        // samples; a lost round spent nothing.
                        let ctx = ctxs[shard as usize].get_or_insert_with(|| {
                            self.campaign.shard_context(shard as usize, shards as usize)
                        });
                        store.merge(self.campaign.lost_shard_round(ctx, round));
                    }
                }
            }
            if let Err(e) = ledger.debit(gross) {
                self.queue.abort();
                return Err(DistError::Credits(e));
            }
            ledger.refund(refund);
        }

        self.queue.finish();
        Ok(DistOutcome {
            store,
            ledger,
            metrics: self.queue.metrics(),
            worker_stats: crate::worker::WorkerStats::default(),
        })
    }
}
