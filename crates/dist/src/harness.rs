//! In-process distributed execution: a real coordinator, a real HTTP
//! server, and N worker threads on localhost.
//!
//! This is the chaos harness the recovery tests and the scaling bench
//! drive: everything crosses the actual wire (registration, polls,
//! heartbeats, CRC-framed result frames), but lives in one process so
//! a test can run a 4-worker fleet with scheduled kills in tens of
//! milliseconds. Killed workers either stay dead (their shard is
//! reassigned to a survivor) or — with
//! [`FleetSpec::restart_killed`] — are respawned as fresh
//! incarnations pointed at the same WAL directory, exercising the
//! journal-resume path.

use std::path::Path;
use std::sync::Arc;

use shears_api::server::ServerConfig;
use shears_api::{ApiServer, AtlasService};
use shears_atlas::{CampaignConfig, Platform, PlatformConfig};

use crate::chaos::ChaosProxy;
use crate::coordinator::{Coordinator, DistConfig, DistOutcome};
use crate::worker::{run_worker_stats, WorkTransport, WorkerConfig, WorkerExit, WorkerStats};
use crate::DistError;

/// The worker fleet the harness spawns.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Worker thread count (independent of the shard count).
    pub workers: usize,
    /// Respawn a chaos-killed worker as a fresh incarnation with the
    /// same WAL directory (crash-restart-resume) instead of leaving
    /// its shard to be reassigned.
    pub restart_killed: bool,
    /// Per-worker chaos schedules; workers beyond the vector get
    /// [`ChaosProxy::none`].
    pub chaos: Vec<ChaosProxy>,
    /// fsync worker WAL appends.
    pub fsync: bool,
    /// Which wire the fleet speaks ([`WorkTransport::Tcp`] by
    /// default; the merge result must not depend on it).
    pub transport: WorkTransport,
}

impl FleetSpec {
    /// `workers` well-behaved workers.
    pub fn clean(workers: usize) -> Self {
        Self {
            workers,
            restart_killed: false,
            chaos: Vec::new(),
            fsync: false,
            transport: WorkTransport::Tcp,
        }
    }

    /// Schedules `chaos` on worker `worker` (builder style).
    pub fn with_chaos(mut self, worker: usize, chaos: ChaosProxy) -> Self {
        if self.chaos.len() <= worker {
            self.chaos.resize(worker + 1, ChaosProxy::none());
        }
        self.chaos[worker] = chaos;
        self
    }

    /// Respawn killed workers (crash-restart-resume mode).
    pub fn restart_killed(mut self) -> Self {
        self.restart_killed = true;
        self
    }

    /// Selects the fleet's work-plane transport (builder style).
    pub fn transport(mut self, transport: WorkTransport) -> Self {
        self.transport = transport;
        self
    }
}

/// Runs a full distributed campaign in-process: builds the platform
/// twice (one copy for the coordinator's plan and the worker threads,
/// one owned by the serving [`AtlasService`] — construction is
/// deterministic, so they agree), spawns the API server and the
/// fleet, and merges to completion. Worker WALs live under
/// `wal_root/worker-{n}/`.
pub fn run_distributed(
    platform_cfg: &PlatformConfig,
    cfg: CampaignConfig,
    dcfg: DistConfig,
    fleet: FleetSpec,
    wal_root: &Path,
) -> Result<DistOutcome, DistError> {
    let platform = Platform::build(platform_cfg);
    let coordinator = Coordinator::new(&platform, cfg, dcfg);
    let service =
        AtlasService::new(Platform::build(platform_cfg)).with_work_queue(coordinator.queue());
    let server = ApiServer::spawn_with(
        "127.0.0.1:0",
        service,
        ServerConfig::reactor(1, fleet.workers.max(2), 64),
    )?;
    let addr = server.local_addr();

    let outcome = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(fleet.workers);
        for w in 0..fleet.workers {
            let mut chaos = fleet.chaos.get(w).cloned().unwrap_or_default();
            let wcfg = WorkerConfig {
                fsync: fleet.fsync,
                transport: fleet.transport,
                ..WorkerConfig::new(wal_root.join(format!("worker-{w}")))
            };
            let platform = &platform;
            let restart = fleet.restart_killed;
            handles.push(s.spawn(move || -> Result<WorkerStats, DistError> {
                let mut total = WorkerStats::default();
                loop {
                    let (exit, stats) = run_worker_stats(addr, platform, &wcfg, &mut chaos)?;
                    total.absorb(stats);
                    match exit {
                        WorkerExit::Killed if restart => continue,
                        _ => return Ok(total),
                    }
                }
            }));
        }

        let mut outcome = coordinator.run();
        // The queue is now finished or aborted; workers observe Done /
        // Abort on their next poll and drain.
        let mut worker_error = None;
        let mut fleet_stats = WorkerStats::default();
        for h in handles {
            match h.join() {
                Ok(Ok(stats)) => fleet_stats.absorb(stats),
                Ok(Err(e)) => worker_error = Some(e),
                Err(_) => {}
            }
        }
        // Re-snapshot the counters after the fleet drains: a revenant
        // worker's late (deduplicated) frames land *after* the merge
        // completed, and they are exactly what the robustness metrics
        // exist to account for.
        if let Ok(out) = &mut outcome {
            out.metrics = coordinator.queue().metrics();
            out.worker_stats = fleet_stats;
        }
        match (outcome, worker_error) {
            // A worker error behind a successful merge is still a bug
            // worth surfacing (the merge may have succeeded off
            // reassignment while a healthy worker tripped a protocol
            // error).
            (Ok(_), Some(e)) => Err(e),
            (outcome, _) => outcome,
        }
    });

    server.shutdown()?;
    outcome
}
