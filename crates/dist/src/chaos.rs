//! Scheduled fault injection for worker fleets.
//!
//! A [`ChaosProxy`] sits between a worker and its assigned rounds: at
//! the top of each round the worker asks the proxy whether anything
//! bad happens *now*. The schedule is fixed up front (explicitly or
//! drawn from a seed), so a chaos run is exactly reproducible — the
//! property the bit-identical-merge tests lean on: whatever the proxy
//! does to the fleet, the coordinator's final store must not move.

use std::time::Duration;

/// One scheduled misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// The worker process dies at the top of the round: nothing is
    /// computed, nothing is journaled, nothing is sent. Its WAL stays
    /// on disk for a restarted incarnation.
    Kill,
    /// The worker dies *after* journaling the round but before
    /// submitting it — the interesting crash: the round exists only
    /// in the local WAL, and a restart must re-frame it from the
    /// journal without recomputing.
    KillAfterJournal,
    /// The worker goes silent for the duration — no heartbeats, no
    /// frames. Long hangs trip the coordinator's failure detector and
    /// get the shard reassigned; the revenant's late frames are then
    /// deduplicated, not double-merged.
    Hang(Duration),
    /// The worker stalls for the duration — alive-but-slow. The
    /// transport-layer heartbeater keeps liveness flowing, so a delay
    /// blows round deadlines (backoff, eventually fencing) without
    /// ever tripping the liveness detector.
    Delay(Duration),
}

/// A worker's chaos schedule: at most one action per round, consumed
/// as the worker reaches that round (a restarted incarnation does not
/// replay already-consumed events). Besides the per-round events, a
/// proxy can model a constant per-message wire delay ([`Self::rtt`])
/// that the worker pays on every *blocking* coordinator wait — the
/// knob the transport bench uses to make pipelining wins measurable.
#[derive(Debug, Clone, Default)]
pub struct ChaosProxy {
    events: Vec<(u32, ChaosAction)>,
    rtt: Duration,
}

impl ChaosProxy {
    /// A proxy that never misbehaves.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill the worker at the top of `round`.
    pub fn kill_at(round: u32) -> Self {
        Self::none().and(round, ChaosAction::Kill)
    }

    /// Kill the worker after journaling `round`, before submitting it.
    pub fn kill_after_journal_at(round: u32) -> Self {
        Self::none().and(round, ChaosAction::KillAfterJournal)
    }

    /// Go silent for `d` at the top of `round`.
    pub fn hang_at(round: u32, d: Duration) -> Self {
        Self::none().and(round, ChaosAction::Hang(d))
    }

    /// Stall (heartbeating) for `d` at the top of `round`.
    pub fn delay_at(round: u32, d: Duration) -> Self {
        Self::none().and(round, ChaosAction::Delay(d))
    }

    /// Injects a simulated round-trip delay: every blocking wait on
    /// the coordinator (handshake, poll answer, verdict the window
    /// forced the worker to wait for) costs an extra `rtt` of sleep.
    /// Pipelined sends are *not* delayed — that is precisely the
    /// bandwidth-delay effect the streamed transport exploits.
    pub fn with_rtt(mut self, rtt: Duration) -> Self {
        self.rtt = rtt;
        self
    }

    /// The injected per-wait round-trip delay (zero by default).
    pub fn rtt(&self) -> Duration {
        self.rtt
    }

    /// Adds another scheduled action (builder style). A later action
    /// for the same round is kept — each round fires at most the first
    /// matching event.
    pub fn and(mut self, round: u32, action: ChaosAction) -> Self {
        self.events.push((round, action));
        self
    }

    /// Draws a schedule from a seed: per round, a ~1-in-8 chance of
    /// misbehaving, split between hangs, delays and (at most one, so a
    /// restart-free fleet of two such proxies cannot wipe itself out
    /// twice) a kill. Deterministic in `seed` and `rounds`.
    pub fn generate(seed: u64, rounds: u32) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut events = Vec::new();
        let mut killed = false;
        for round in 0..rounds {
            let draw = splitmix(&mut state);
            if draw % 8 != 0 {
                continue;
            }
            let pick = (draw >> 8) % 4;
            let ms = 60 + (draw >> 16) % 240;
            let action = match pick {
                0 if !killed => {
                    killed = true;
                    ChaosAction::Kill
                }
                1 if !killed => {
                    killed = true;
                    ChaosAction::KillAfterJournal
                }
                2 => ChaosAction::Hang(Duration::from_millis(ms)),
                _ => ChaosAction::Delay(Duration::from_millis(ms)),
            };
            events.push((round, action));
        }
        Self {
            events,
            rtt: Duration::ZERO,
        }
    }

    /// Consumes and returns the action scheduled for `round`, if any.
    pub fn take(&mut self, round: u32) -> Option<ChaosAction> {
        let i = self.events.iter().position(|&(r, _)| r == round)?;
        Some(self.events.remove(i).1)
    }

    /// Actions not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_fire_once_and_in_round_order() {
        let mut p = ChaosProxy::kill_at(3).and(5, ChaosAction::Hang(Duration::from_millis(10)));
        assert_eq!(p.take(0), None);
        assert_eq!(p.take(3), Some(ChaosAction::Kill));
        assert_eq!(p.take(3), None, "events are consumed");
        assert_eq!(p.take(5), Some(ChaosAction::Hang(Duration::from_millis(10))));
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn generated_schedules_are_deterministic_and_kill_at_most_once() {
        let a = ChaosProxy::generate(42, 64);
        let b = ChaosProxy::generate(42, 64);
        assert_eq!(a.events, b.events);
        let kills = a
            .events
            .iter()
            .filter(|(_, e)| matches!(e, ChaosAction::Kill | ChaosAction::KillAfterJournal))
            .count();
        assert!(kills <= 1, "at most one kill per schedule, got {kills}");
        assert_ne!(
            ChaosProxy::generate(43, 64).events,
            a.events,
            "different seeds draw different schedules"
        );
    }
}
