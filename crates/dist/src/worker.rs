//! The worker side: execute assigned shards behind a local WAL.
//!
//! A worker is a loop around the `/api/v2/work/*` protocol: register
//! (and prove, by digest, that its locally-built platform reproduces
//! the coordinator's campaign), poll for a shard, execute it round by
//! round, stream each completed round back as a CRC-framed columnar
//! frame. Every round is appended to a per-shard write-ahead journal
//! *before* it is submitted, so a worker that dies mid-shard and
//! restarts re-frames the journaled rounds straight from its WAL —
//! no recomputation, and the coordinator's digest-based dedup makes
//! the resend idempotent.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use shears_api::client::ApiSession;
use shears_api::work::{self, FrameVerdict, WorkAssignment, WorkReply};
use shears_atlas::journal::{self, JournalWriter};
use shears_atlas::{Campaign, CreditLedger, JournalHeader, Platform, ResultStore};

use crate::chaos::{ChaosAction, ChaosProxy};
use crate::DistError;

/// Where (and how durably) a worker journals its shards.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Directory for the per-shard WALs (`shard-{n}.wal`); created on
    /// first use. A restarted worker pointed at the same directory
    /// resumes its shards from these journals.
    pub wal_dir: PathBuf,
    /// fsync every append (crash-durable) vs. leave flushing to the OS
    /// (fast, test-friendly).
    pub fsync: bool,
    /// Socket connect/read/write timeout for every API round trip.
    pub request_timeout: Duration,
}

impl WorkerConfig {
    /// A worker journaling into `wal_dir` with test-friendly defaults.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        Self {
            wal_dir: wal_dir.into(),
            fsync: false,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// How a worker's run ended (errors are `Err` instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The campaign is fully merged.
    Done,
    /// The coordinator aborted the campaign (strict-mode failure).
    Aborted,
    /// A scheduled [`ChaosAction`] killed this incarnation; its WAL
    /// remains for a successor.
    Killed,
}

enum AssignmentEnd {
    /// Every round submitted; poll for more work.
    Completed,
    /// The shard was reassigned away mid-run; poll for more work.
    Fenced,
    /// Terminal: propagate to the caller.
    Exit(WorkerExit),
}

/// Runs one worker incarnation against the coordinator at `addr`,
/// using `platform` (which must be built from the same configuration
/// as the coordinator's — this is verified by digest at registration)
/// and injecting the scheduled `chaos`. Returns how the incarnation
/// ended; a [`WorkerExit::Killed`] worker can be restarted with the
/// same [`WorkerConfig::wal_dir`] to resume from its journals.
pub fn run_worker(
    addr: std::net::SocketAddr,
    platform: &Platform,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
) -> Result<WorkerExit, DistError> {
    let mut session = ApiSession::connect_with_timeout(addr, wcfg.request_timeout)?;

    let (status, body) =
        session.request("POST", "/api/v2/work/register", Some(&work::encode_hello()))?;
    if status != 200 {
        return Err(DistError::Protocol("registration refused"));
    }
    let (worker_id, hb_ms, header_wire) =
        work::decode_welcome(&body).map_err(DistError::Protocol)?;
    let header = JournalHeader::from_wire(&header_wire).map_err(DistError::Protocol)?;
    let campaign = Campaign::new(platform, header.config);
    let local = campaign.journal_header();
    if local.fleet_digest != header.fleet_digest || local.plan_digest != header.plan_digest {
        return Err(DistError::CampaignMismatch);
    }
    let heartbeat = Duration::from_millis(hb_ms.max(1));

    loop {
        let (status, body) =
            session.request("POST", "/api/v2/work/poll", Some(&work::encode_poll(worker_id)))?;
        if status != 200 {
            return Err(DistError::Protocol("poll refused"));
        }
        match work::decode_reply(&body).map_err(DistError::Protocol)? {
            WorkReply::Idle => std::thread::sleep(heartbeat),
            WorkReply::Done => return Ok(WorkerExit::Done),
            WorkReply::Abort => return Ok(WorkerExit::Aborted),
            WorkReply::Assigned(a) => {
                match run_assignment(&mut session, worker_id, &campaign, a, wcfg, chaos, heartbeat)?
                {
                    AssignmentEnd::Completed | AssignmentEnd::Fenced => {}
                    AssignmentEnd::Exit(exit) => return Ok(exit),
                }
            }
        }
    }
}

/// Executes one shard assignment to completion (or until fenced,
/// killed, or errored). The WAL protocol: replay-and-resend first,
/// then `run_shard → append_round → submit` per remaining round.
fn run_assignment(
    session: &mut ApiSession,
    worker_id: u64,
    campaign: &Campaign<'_>,
    a: WorkAssignment,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
    heartbeat: Duration,
) -> Result<AssignmentEnd, DistError> {
    let mut ctx = campaign.shard_context(a.shard as usize, a.shard_count as usize);
    let shard_header = campaign.shard_header(&ctx);
    std::fs::create_dir_all(&wcfg.wal_dir)?;
    let path = wcfg.wal_dir.join(format!("shard-{}.wal", a.shard));

    let mut replayed = None;
    if path.exists() {
        let rep = journal::replay(&path)?;
        if rep.header == shard_header {
            replayed = Some(rep);
        } else {
            // A WAL for some other partition or campaign — useless
            // here, and resuming it would corrupt the merge.
            std::fs::remove_file(&path)?;
        }
    }

    let (mut writer, mut wal_store, mut wal_ledger, start);
    match replayed {
        Some(rep) => {
            // Re-send every journaled round the coordinator still
            // needs. Digest-based dedup upstream makes this idempotent:
            // rounds it already has come back `Duplicate` and are
            // dropped, never double-merged.
            for mark in rep.marks.iter().filter(|m| m.round >= a.start_round) {
                let mut frame = ResultStore::with_capacity(mark.rows_end - mark.rows_start);
                for i in mark.rows_start..mark.rows_end {
                    frame.push(rep.store.get(i));
                }
                match submit_frame(
                    session,
                    worker_id,
                    a.shard,
                    mark.round,
                    mark.gross,
                    mark.refund,
                    &frame,
                )? {
                    (FrameVerdict::Rejected, true) => {
                        return Err(DistError::Protocol("journaled frame rejected"))
                    }
                    (_, false) => return Ok(AssignmentEnd::Fenced),
                    _ => {}
                }
            }
            start = rep.next_round.max(a.start_round);
            writer = JournalWriter::open_append(&path, &rep, wcfg.fsync)?;
            wal_store = rep.store;
            wal_ledger = rep.ledger;
        }
        None => {
            writer = JournalWriter::create(&path, &shard_header, wcfg.fsync)?;
            wal_store = ResultStore::new();
            wal_ledger = CreditLedger::new(shard_header.config.credits);
            if a.start_round > 0 {
                // Takeover: rounds before `start_round` were delivered
                // by a previous owner. Checkpoint an empty base so our
                // own restarts resume here, not at round 0.
                writer.checkpoint(a.start_round, &wal_store, &wal_ledger)?;
            }
            start = a.start_round;
        }
    }

    for round in start..a.rounds {
        let mut kill_after_journal = false;
        match chaos.take(round) {
            Some(ChaosAction::Kill) => return Ok(AssignmentEnd::Exit(WorkerExit::Killed)),
            Some(ChaosAction::KillAfterJournal) => kill_after_journal = true,
            Some(ChaosAction::Hang(d)) => std::thread::sleep(d),
            Some(ChaosAction::Delay(d)) => {
                if let Some(exit) = heartbeat_through(session, worker_id, d, heartbeat)? {
                    return Ok(AssignmentEnd::Exit(exit));
                }
            }
            None => {}
        }

        let (frame, gross, refund) = campaign.run_shard(&mut ctx, round);
        let from = wal_store.len();
        wal_store.merge(frame.clone());
        wal_ledger.debit(gross)?;
        wal_ledger.refund(refund);
        writer.append_round(round, &wal_store, from, &wal_ledger)?;
        if kill_after_journal {
            return Ok(AssignmentEnd::Exit(WorkerExit::Killed));
        }

        match submit_frame(session, worker_id, a.shard, round, gross, refund, &frame)? {
            (FrameVerdict::Rejected, true) => {
                return Err(DistError::Protocol("fresh frame rejected"))
            }
            (_, false) => return Ok(AssignmentEnd::Fenced),
            _ => {}
        }
    }
    Ok(AssignmentEnd::Completed)
}

/// One frame submission round trip.
fn submit_frame(
    session: &mut ApiSession,
    worker: u64,
    shard: u32,
    round: u32,
    gross: u64,
    refund: u64,
    frame: &ResultStore,
) -> Result<(FrameVerdict, bool), DistError> {
    let body = work::encode_frame_submit(worker, shard, round, gross, refund, frame);
    let (status, resp) = session.request("POST", "/api/v2/work/frame", Some(&body))?;
    if status != 200 {
        return Err(DistError::Protocol("frame submission refused"));
    }
    work::decode_verdict(&resp).map_err(DistError::Protocol)
}

/// Sleeps for `d` in heartbeat-sized slices, heartbeating between
/// slices so the liveness detector sees an alive-but-slow worker, not
/// a dead one. Returns a terminal exit if the coordinator finished or
/// aborted mid-delay.
fn heartbeat_through(
    session: &mut ApiSession,
    worker: u64,
    d: Duration,
    heartbeat: Duration,
) -> Result<Option<WorkerExit>, DistError> {
    let end = Instant::now() + d;
    loop {
        let now = Instant::now();
        let Some(left) = end.checked_duration_since(now) else {
            return Ok(None);
        };
        std::thread::sleep(left.min(heartbeat));
        let (status, body) =
            session.request("POST", "/api/v2/work/heartbeat", Some(&work::encode_poll(worker)))?;
        if status != 200 {
            return Err(DistError::Protocol("heartbeat refused"));
        }
        match work::decode_reply(&body).map_err(DistError::Protocol)? {
            WorkReply::Done => return Ok(Some(WorkerExit::Done)),
            WorkReply::Abort => return Ok(Some(WorkerExit::Aborted)),
            WorkReply::Idle | WorkReply::Assigned(_) => {}
        }
    }
}
