//! The worker side: execute assigned shards behind a local WAL.
//!
//! A worker is a loop around the work protocol: register (and prove,
//! by digest, that its locally-built platform reproduces the
//! coordinator's campaign), poll for a shard, execute it round by
//! round, stream each completed round back as a CRC-framed columnar
//! frame. Every round is appended to a per-shard write-ahead journal
//! *before* it is submitted, so a worker that dies mid-shard and
//! restarts re-frames the journaled rounds straight from its WAL —
//! no recomputation, and the coordinator's digest-based dedup makes
//! the resend idempotent.
//!
//! Two wire shapes speak the same protocol ([`WorkTransport`]):
//!
//! - **Tcp** (default): one long-lived CRC-framed stream. Completed
//!   rounds are *pipelined* — up to [`WorkerConfig::window`] frames
//!   ride the wire unacked, verdicts come back asynchronously matched
//!   by `(shard, round)`, and the coordinator pushes fencing / Done /
//!   Abort down the stream instead of waiting for the next poll.
//!   Unacked-in-window frames are still journaled first, so crash
//!   semantics are identical to the blocking path.
//! - **Http**: the PR-9 compat shim — one `POST /api/v2/work/*`
//!   round trip per protocol step, every frame blocking on its
//!   verdict.
//!
//! On both transports, heartbeats come from a dedicated transport
//! layer thread (piggybacking on recent traffic, sending explicit
//! beats only when idle past the tick) — never from the session the
//! worker computes on, so a long round can no longer starve liveness
//! into a false fence.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shears_api::client::ApiSession;
use shears_api::work::{self, FrameVerdict, StreamMsg, WorkAssignment, WorkReply};
use shears_api::WorkStreamClient;
use shears_atlas::journal::{self, JournalWriter};
use shears_atlas::{Campaign, CreditLedger, JournalHeader, Platform, ResultStore};

use crate::chaos::{ChaosAction, ChaosProxy};
use crate::DistError;

/// Which wire the worker speaks to the coordinator over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkTransport {
    /// One HTTP POST per protocol step over a keep-alive session —
    /// the compat shim; every frame blocks on its verdict.
    Http,
    /// A single long-lived CRC-framed TCP stream with pipelined frame
    /// submission, async verdicts and pushed control replies.
    #[default]
    Tcp,
}

/// Where (and how durably) a worker journals its shards, and how it
/// talks to the coordinator.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Directory for the per-shard WALs (`shard-{n}.wal`); created on
    /// first use. A restarted worker pointed at the same directory
    /// resumes its shards from these journals.
    pub wal_dir: PathBuf,
    /// fsync every append (crash-durable) vs. leave flushing to the OS
    /// (fast, test-friendly).
    pub fsync: bool,
    /// Socket connect/read/write timeout for every API round trip.
    pub request_timeout: Duration,
    /// Which wire shape to use (default [`WorkTransport::Tcp`]).
    pub transport: WorkTransport,
    /// Streamed-transport in-flight window: how many submitted frames
    /// may await their verdict before the worker blocks (default 8).
    /// Ignored by the HTTP transport, which is window-1 by nature.
    pub window: usize,
}

impl WorkerConfig {
    /// A worker journaling into `wal_dir` with test-friendly defaults.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        Self {
            wal_dir: wal_dir.into(),
            fsync: false,
            request_timeout: Duration::from_secs(10),
            transport: WorkTransport::Tcp,
            window: 8,
        }
    }

    /// Returns `self` speaking `transport` (builder style).
    pub fn transport(mut self, transport: WorkTransport) -> Self {
        self.transport = transport;
        self
    }
}

/// How a worker's run ended (errors are `Err` instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The campaign is fully merged.
    Done,
    /// The coordinator aborted the campaign (strict-mode failure).
    Aborted,
    /// A scheduled [`ChaosAction`] killed this incarnation; its WAL
    /// remains for a successor.
    Killed,
}

/// Wire-level counters from one worker incarnation — the measurable
/// side of the pipelining win. A *blocking wait* is one episode where
/// the worker thread could not proceed without hearing from the
/// coordinator (connect/register handshake, a poll answer, a verdict
/// the full window forced it to wait for, the end-of-assignment
/// drain); however many messages arrive during the episode, it counts
/// once. The blocking HTTP transport pays one wait per request — one
/// per round — where the streamed transport pays one per stall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Episodes spent blocked on the coordinator (each also costs one
    /// [`ChaosProxy::rtt`] of injected wire delay).
    pub blocking_waits: u64,
    /// Round frames sent, including WAL resends.
    pub frames_sent: u64,
    /// Times the TCP stream was re-dialed after an I/O failure.
    pub stream_reconnects: u64,
}

impl WorkerStats {
    /// Folds another incarnation's counters into this one.
    pub fn absorb(&mut self, other: WorkerStats) {
        self.blocking_waits += other.blocking_waits;
        self.frames_sent += other.frames_sent;
        self.stream_reconnects += other.stream_reconnects;
    }
}

enum AssignmentEnd {
    /// Every round submitted; poll for more work.
    Completed,
    /// The shard was reassigned away mid-run; poll for more work.
    Fenced,
    /// Terminal: propagate to the caller.
    Exit(WorkerExit),
}

/// Runs one worker incarnation against the coordinator at `addr`,
/// using `platform` (which must be built from the same configuration
/// as the coordinator's — this is verified by digest at registration)
/// and injecting the scheduled `chaos`. Returns how the incarnation
/// ended; a [`WorkerExit::Killed`] worker can be restarted with the
/// same [`WorkerConfig::wal_dir`] to resume from its journals.
pub fn run_worker(
    addr: std::net::SocketAddr,
    platform: &Platform,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
) -> Result<WorkerExit, DistError> {
    run_worker_stats(addr, platform, wcfg, chaos).map(|(exit, _)| exit)
}

/// [`run_worker`], also returning the incarnation's wire counters.
pub fn run_worker_stats(
    addr: std::net::SocketAddr,
    platform: &Platform,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
) -> Result<(WorkerExit, WorkerStats), DistError> {
    let mut stats = WorkerStats::default();
    let exit = match wcfg.transport {
        WorkTransport::Http => run_worker_http(addr, platform, wcfg, chaos, &mut stats)?,
        WorkTransport::Tcp => run_worker_tcp(addr, platform, wcfg, chaos, &mut stats)?,
    };
    Ok((exit, stats))
}

/// One blocking-wait episode: counted, and charged the injected RTT.
fn wire_stall(stats: &mut WorkerStats, rtt: Duration) {
    stats.blocking_waits += 1;
    if !rtt.is_zero() {
        std::thread::sleep(rtt);
    }
}

// ---------------------------------------------------------------------------
// Shared WAL machinery
// ---------------------------------------------------------------------------

/// A shard WAL opened (or resumed) for an assignment.
struct WalResume {
    writer: JournalWriter,
    store: ResultStore,
    ledger: CreditLedger,
    /// First round to *compute* (everything before it is journaled).
    start: u32,
    /// Journaled rounds `>= start_round` to re-send before computing:
    /// `(round, gross, refund, frame)`. Digest-based dedup upstream
    /// makes the resend idempotent.
    resend: Vec<(u32, u64, u64, ResultStore)>,
}

/// Opens the per-shard WAL: replay-and-extract if a matching journal
/// exists, create (with a takeover checkpoint when `start_round > 0`)
/// otherwise. A WAL for some other partition or campaign is removed —
/// resuming it would corrupt the merge.
fn open_wal(
    a: &WorkAssignment,
    shard_header: &JournalHeader,
    wcfg: &WorkerConfig,
) -> Result<WalResume, DistError> {
    std::fs::create_dir_all(&wcfg.wal_dir)?;
    let path = wcfg.wal_dir.join(format!("shard-{}.wal", a.shard));

    let mut replayed = None;
    if path.exists() {
        let rep = journal::replay(&path)?;
        if rep.header == *shard_header {
            replayed = Some(rep);
        } else {
            std::fs::remove_file(&path)?;
        }
    }

    match replayed {
        Some(rep) => {
            let mut resend = Vec::new();
            for mark in rep.marks.iter().filter(|m| m.round >= a.start_round) {
                let mut frame = ResultStore::with_capacity(mark.rows_end - mark.rows_start);
                for i in mark.rows_start..mark.rows_end {
                    frame.push(rep.store.get(i));
                }
                resend.push((mark.round, mark.gross, mark.refund, frame));
            }
            let start = rep.next_round.max(a.start_round);
            let writer = JournalWriter::open_append(&path, &rep, wcfg.fsync)?;
            Ok(WalResume {
                writer,
                store: rep.store,
                ledger: rep.ledger,
                start,
                resend,
            })
        }
        None => {
            let mut writer = JournalWriter::create(&path, shard_header, wcfg.fsync)?;
            let store = ResultStore::new();
            let ledger = CreditLedger::new(shard_header.config.credits);
            if a.start_round > 0 {
                // Takeover: rounds before `start_round` were delivered
                // by a previous owner. Checkpoint an empty base so our
                // own restarts resume here, not at round 0.
                writer.checkpoint(a.start_round, &store, &ledger)?;
            }
            Ok(WalResume {
                writer,
                store,
                ledger,
                start: a.start_round,
                resend: Vec::new(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Streamed TCP transport (default)
// ---------------------------------------------------------------------------

fn run_worker_tcp(
    addr: SocketAddr,
    platform: &Platform,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
    stats: &mut WorkerStats,
) -> Result<WorkerExit, DistError> {
    let rtt = chaos.rtt();
    let mut reconnect = false;
    // One internal re-dial per incarnation: a broken stream is
    // recoverable (the WAL re-frames whatever was in flight), but a
    // second break in a row is surfaced as the error it is.
    let mut redials_left = 1u32;
    loop {
        match tcp_incarnation(addr, platform, wcfg, chaos, rtt, reconnect, stats) {
            Ok(exit) => return Ok(exit),
            Err(DistError::Io(_)) if redials_left > 0 => {
                redials_left -= 1;
                stats.stream_reconnects += 1;
                reconnect = true;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

/// One stream lifetime: connect, validate digests, poll/execute until
/// a terminal reply. Any `DistError::Io` out of here may be retried by
/// the caller on a fresh stream.
fn tcp_incarnation(
    addr: SocketAddr,
    platform: &Platform,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
    rtt: Duration,
    reconnect: bool,
    stats: &mut WorkerStats,
) -> Result<WorkerExit, DistError> {
    wire_stall(stats, rtt); // connect + HELLO/WELCOME handshake
    let (mut stream, worker_id, hb_ms, header_wire) =
        WorkStreamClient::connect(addr, wcfg.request_timeout, reconnect)?;
    let header = JournalHeader::from_wire(&header_wire).map_err(DistError::Protocol)?;
    let campaign = Campaign::new(platform, header.config);
    let local = campaign.journal_header();
    if local.fleet_digest != header.fleet_digest || local.plan_digest != header.plan_digest {
        return Err(DistError::CampaignMismatch);
    }
    let heartbeat = Duration::from_millis(hb_ms.max(1));
    stream.start_heartbeats(worker_id, heartbeat);

    loop {
        stream.send(&work::poll_payload(worker_id))?;
        match tcp_wait_reply(&mut stream, rtt, stats)? {
            WorkReply::Idle => std::thread::sleep(heartbeat),
            WorkReply::Done => return Ok(WorkerExit::Done),
            WorkReply::Abort => return Ok(WorkerExit::Aborted),
            WorkReply::Assigned(a) => {
                match run_assignment_tcp(&mut stream, worker_id, &campaign, a, wcfg, chaos, rtt, stats)?
                {
                    AssignmentEnd::Completed | AssignmentEnd::Fenced => {}
                    AssignmentEnd::Exit(exit) => return Ok(exit),
                }
            }
        }
    }
}

/// Waits for the next control [`WorkReply`] (poll answer or pushed
/// terminal). Verdict stragglers from a fenced assignment are
/// discarded here: the stream is ordered, so every verdict for an old
/// assignment arrives — and is skipped — *before* the reply that
/// grants a new one, which is what makes `(shard, round)` matching
/// unambiguous across assignments.
fn tcp_wait_reply(
    stream: &mut WorkStreamClient,
    rtt: Duration,
    stats: &mut WorkerStats,
) -> Result<WorkReply, DistError> {
    let mut stalled = false;
    loop {
        let msg = match stream.take_buffered()? {
            Some(m) => m,
            None => {
                if !stalled {
                    wire_stall(stats, rtt);
                    stalled = true;
                }
                stream.recv(Instant::now() + stream.timeout())?
            }
        };
        match msg {
            StreamMsg::Reply(r) => return Ok(r),
            StreamMsg::Verdict { .. } => {}
            _ => return Err(DistError::Protocol("unexpected message awaiting reply")),
        }
    }
}

/// Executes one shard assignment over the stream: WAL resends and
/// fresh rounds are all pushed through the same in-flight window,
/// then the tail is drained so the assignment only completes with
/// every frame acked.
#[allow(clippy::too_many_arguments)]
fn run_assignment_tcp(
    stream: &mut WorkStreamClient,
    worker_id: u64,
    campaign: &Campaign<'_>,
    a: WorkAssignment,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
    rtt: Duration,
    stats: &mut WorkerStats,
) -> Result<AssignmentEnd, DistError> {
    let mut ctx = campaign.shard_context(a.shard as usize, a.shard_count as usize);
    let shard_header = campaign.shard_header(&ctx);
    let mut wal = open_wal(&a, &shard_header, wcfg)?;
    let window = wcfg.window.max(1);
    let mut inflight: Vec<u32> = Vec::new();

    for (round, gross, refund, frame) in std::mem::take(&mut wal.resend) {
        let payload = work::frame_submit_payload(worker_id, a.shard, round, gross, refund, &frame);
        if let Some(end) =
            push_frame(stream, &mut inflight, round, &payload, window, a.shard, rtt, stats)?
        {
            return Ok(end);
        }
    }

    for round in wal.start..a.rounds {
        let mut kill_after_journal = false;
        match chaos.take(round) {
            Some(ChaosAction::Kill) => return Ok(AssignmentEnd::Exit(WorkerExit::Killed)),
            Some(ChaosAction::KillAfterJournal) => kill_after_journal = true,
            Some(ChaosAction::Hang(d)) => {
                // Fully wedged: even the heartbeater goes silent, so
                // the failure detector sees a dead worker.
                stream.pause_heartbeats(true);
                std::thread::sleep(d);
                stream.pause_heartbeats(false);
            }
            Some(ChaosAction::Delay(d)) => std::thread::sleep(d),
            None => {}
        }

        let (frame, gross, refund) = campaign.run_shard(&mut ctx, round);
        let from = wal.store.len();
        wal.store.merge(frame.clone());
        wal.ledger.debit(gross)?;
        wal.ledger.refund(refund);
        wal.writer.append_round(round, &wal.store, from, &wal.ledger)?;
        if kill_after_journal {
            return Ok(AssignmentEnd::Exit(WorkerExit::Killed));
        }

        let payload = work::frame_submit_payload(worker_id, a.shard, round, gross, refund, &frame);
        if let Some(end) =
            push_frame(stream, &mut inflight, round, &payload, window, a.shard, rtt, stats)?
        {
            return Ok(end);
        }
    }

    // Drain the window: one blocking episode, however many verdicts
    // are still in flight.
    if !inflight.is_empty() {
        wire_stall(stats, rtt);
        while !inflight.is_empty() {
            let msg = stream.recv(Instant::now() + stream.timeout())?;
            if let Some(end) = on_stream_msg(msg, a.shard, &mut inflight)? {
                return Ok(end);
            }
        }
    }
    Ok(AssignmentEnd::Completed)
}

/// Sends one frame through the window: drain whatever verdicts are
/// already buffered (free), block only when the window is full, then
/// ship. Returns `Some(end)` if a verdict or pushed reply ended the
/// assignment first.
#[allow(clippy::too_many_arguments)]
fn push_frame(
    stream: &mut WorkStreamClient,
    inflight: &mut Vec<u32>,
    round: u32,
    payload: &[u8],
    window: usize,
    shard: u32,
    rtt: Duration,
    stats: &mut WorkerStats,
) -> Result<Option<AssignmentEnd>, DistError> {
    while let Some(msg) = stream.take_buffered()? {
        if let Some(end) = on_stream_msg(msg, shard, inflight)? {
            return Ok(Some(end));
        }
    }
    if inflight.len() >= window {
        wire_stall(stats, rtt);
        while inflight.len() >= window {
            let msg = stream.recv(Instant::now() + stream.timeout())?;
            if let Some(end) = on_stream_msg(msg, shard, inflight)? {
                return Ok(Some(end));
            }
        }
    }
    stream.send(payload)?;
    inflight.push(round);
    stats.frames_sent += 1;
    Ok(None)
}

/// Applies one mid-assignment stream message: async verdicts retire
/// in-flight rounds (out-of-order is fine — matching is by round),
/// pushed replies fence or terminate.
fn on_stream_msg(
    msg: StreamMsg,
    shard: u32,
    inflight: &mut Vec<u32>,
) -> Result<Option<AssignmentEnd>, DistError> {
    match msg {
        StreamMsg::Verdict {
            shard: s,
            round,
            verdict,
            current,
        } => {
            let slot = if s == shard {
                inflight.iter().position(|&r| r == round)
            } else {
                None
            };
            let Some(i) = slot else {
                // A straggler from a previous (fenced) assignment;
                // its dedup already happened server-side.
                return Ok(None);
            };
            inflight.swap_remove(i);
            if !current {
                return Ok(Some(AssignmentEnd::Fenced));
            }
            if matches!(verdict, FrameVerdict::Rejected) {
                return Err(DistError::Protocol("in-window frame rejected"));
            }
            Ok(None)
        }
        StreamMsg::Reply(WorkReply::Idle) => Ok(Some(AssignmentEnd::Fenced)),
        StreamMsg::Reply(WorkReply::Done) => Ok(Some(AssignmentEnd::Exit(WorkerExit::Done))),
        StreamMsg::Reply(WorkReply::Abort) => Ok(Some(AssignmentEnd::Exit(WorkerExit::Aborted))),
        StreamMsg::Reply(WorkReply::Assigned(_)) => {
            Err(DistError::Protocol("unsolicited assignment mid-shard"))
        }
        _ => Err(DistError::Protocol("unexpected message on work stream")),
    }
}

// ---------------------------------------------------------------------------
// Blocking HTTP transport (compat shim)
// ---------------------------------------------------------------------------

/// Control flags between the HTTP heartbeater thread and the main
/// loop. The heartbeater only beats while an assignment is active
/// (between assignments the poll loop itself is the liveness signal)
/// and only when the piggyback clock says the main session has been
/// quiet for a full interval.
struct HbGate {
    epoch: Instant,
    stop: AtomicBool,
    paused: AtomicBool,
    assigned: AtomicBool,
    /// ms since `epoch` of the last main-loop request.
    last_traffic_ms: AtomicU64,
    /// Highest-priority reply the heartbeater saw: 0 none, 1 fenced
    /// (Idle while assigned), 2 done, 3 abort.
    flag: AtomicU8,
}

const HB_NONE: u8 = 0;
const HB_FENCED: u8 = 1;
const HB_DONE: u8 = 2;
const HB_ABORT: u8 = 3;

impl HbGate {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            stop: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            assigned: AtomicBool::new(false),
            last_traffic_ms: AtomicU64::new(0),
            flag: AtomicU8::new(HB_NONE),
        }
    }

    fn touch(&self) {
        let now = self.epoch.elapsed().as_millis() as u64;
        self.last_traffic_ms.store(now, Ordering::Relaxed);
    }
}

/// Stops and joins the heartbeater on the way out, error paths
/// included.
struct HbGuard {
    gate: Arc<HbGate>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for HbGuard {
    fn drop(&mut self) {
        self.gate.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The heartbeater: its own [`ApiSession`] (never the one the worker
/// measures with — the bug this replaces), beating only when the main
/// session has been idle past the interval. Terminal or fencing
/// replies are flagged for the main loop to act on at the next round
/// boundary.
fn spawn_http_heartbeater(
    addr: SocketAddr,
    timeout: Duration,
    worker: u64,
    interval: Duration,
    gate: Arc<HbGate>,
) -> HbGuard {
    let tick = (interval / 4).max(Duration::from_millis(1));
    let interval_ms = interval.as_millis() as u64;
    let thread_gate = Arc::clone(&gate);
    let handle = std::thread::spawn(move || {
        let gate = thread_gate;
        let mut session: Option<ApiSession> = None;
        loop {
            std::thread::sleep(tick);
            if gate.stop.load(Ordering::Relaxed) {
                return;
            }
            if gate.paused.load(Ordering::Relaxed) || !gate.assigned.load(Ordering::Relaxed) {
                continue;
            }
            let now_ms = gate.epoch.elapsed().as_millis() as u64;
            let idle = now_ms.saturating_sub(gate.last_traffic_ms.load(Ordering::Relaxed));
            if idle < interval_ms {
                continue;
            }
            if session.is_none() {
                session = ApiSession::connect_with_timeout(addr, timeout).ok();
            }
            let Some(s) = session.as_mut() else { continue };
            match s.request("POST", "/api/v2/work/heartbeat", Some(&work::encode_poll(worker))) {
                Ok((200, body)) => {
                    gate.touch();
                    match work::decode_reply(&body) {
                        Ok(WorkReply::Idle) => {
                            // Assigned but the queue says idle: the
                            // shard moved on without us.
                            gate.flag.fetch_max(HB_FENCED, Ordering::Relaxed);
                        }
                        Ok(WorkReply::Done) => {
                            gate.flag.fetch_max(HB_DONE, Ordering::Relaxed);
                        }
                        Ok(WorkReply::Abort) => {
                            gate.flag.fetch_max(HB_ABORT, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                }
                _ => session = None,
            }
        }
    });
    HbGuard {
        gate,
        handle: Some(handle),
    }
}

/// The main-loop HTTP session plus its gate: every request is one
/// blocking wait, pays the injected RTT, and feeds the piggyback
/// clock so the heartbeater stays quiet while traffic flows.
struct HttpPlane {
    session: ApiSession,
    gate: Arc<HbGate>,
    rtt: Duration,
}

impl HttpPlane {
    fn request(
        &mut self,
        path: &'static str,
        body: &[u8],
        refused: &'static str,
        stats: &mut WorkerStats,
    ) -> Result<Vec<u8>, DistError> {
        wire_stall(stats, self.rtt);
        let (status, resp) = self.session.request("POST", path, Some(body))?;
        self.gate.touch();
        if status != 200 {
            return Err(DistError::Protocol(refused));
        }
        Ok(resp)
    }
}

fn run_worker_http(
    addr: SocketAddr,
    platform: &Platform,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
    stats: &mut WorkerStats,
) -> Result<WorkerExit, DistError> {
    let gate = Arc::new(HbGate::new());
    let mut plane = HttpPlane {
        session: ApiSession::connect_with_timeout(addr, wcfg.request_timeout)?,
        gate: Arc::clone(&gate),
        rtt: chaos.rtt(),
    };

    let body = plane.request(
        "/api/v2/work/register",
        &work::encode_hello(),
        "registration refused",
        stats,
    )?;
    let (worker_id, hb_ms, header_wire) = work::decode_welcome(&body).map_err(DistError::Protocol)?;
    let header = JournalHeader::from_wire(&header_wire).map_err(DistError::Protocol)?;
    let campaign = Campaign::new(platform, header.config);
    let local = campaign.journal_header();
    if local.fleet_digest != header.fleet_digest || local.plan_digest != header.plan_digest {
        return Err(DistError::CampaignMismatch);
    }
    let heartbeat = Duration::from_millis(hb_ms.max(1));
    let _hb = spawn_http_heartbeater(
        addr,
        wcfg.request_timeout,
        worker_id,
        heartbeat,
        Arc::clone(&gate),
    );

    loop {
        let body = plane.request(
            "/api/v2/work/poll",
            &work::encode_poll(worker_id),
            "poll refused",
            stats,
        )?;
        match work::decode_reply(&body).map_err(DistError::Protocol)? {
            WorkReply::Idle => std::thread::sleep(heartbeat),
            WorkReply::Done => return Ok(WorkerExit::Done),
            WorkReply::Abort => return Ok(WorkerExit::Aborted),
            WorkReply::Assigned(a) => {
                gate.assigned.store(true, Ordering::Relaxed);
                // A fence flag left over from a previous assignment's
                // last heartbeat is stale; terminal flags are not.
                let _ = gate.flag.compare_exchange(
                    HB_FENCED,
                    HB_NONE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                let end = run_assignment_http(&mut plane, worker_id, &campaign, a, wcfg, chaos, stats);
                gate.assigned.store(false, Ordering::Relaxed);
                match end? {
                    AssignmentEnd::Completed | AssignmentEnd::Fenced => {}
                    AssignmentEnd::Exit(exit) => return Ok(exit),
                }
            }
        }
    }
}

/// Executes one shard assignment to completion (or until fenced,
/// killed, or errored). The WAL protocol: replay-and-resend first,
/// then `run_shard → append_round → submit` per remaining round, each
/// submit blocking on its verdict (this is the window-1 shim).
fn run_assignment_http(
    plane: &mut HttpPlane,
    worker_id: u64,
    campaign: &Campaign<'_>,
    a: WorkAssignment,
    wcfg: &WorkerConfig,
    chaos: &mut ChaosProxy,
    stats: &mut WorkerStats,
) -> Result<AssignmentEnd, DistError> {
    let mut ctx = campaign.shard_context(a.shard as usize, a.shard_count as usize);
    let shard_header = campaign.shard_header(&ctx);
    let mut wal = open_wal(&a, &shard_header, wcfg)?;

    for (round, gross, refund, frame) in std::mem::take(&mut wal.resend) {
        match submit_frame_http(plane, worker_id, a.shard, round, gross, refund, &frame, stats)? {
            (FrameVerdict::Rejected, true) => {
                return Err(DistError::Protocol("journaled frame rejected"))
            }
            (_, false) => return Ok(AssignmentEnd::Fenced),
            _ => {}
        }
    }

    for round in wal.start..a.rounds {
        match plane.gate.flag.swap(HB_NONE, Ordering::Relaxed) {
            HB_ABORT => return Ok(AssignmentEnd::Exit(WorkerExit::Aborted)),
            HB_DONE => return Ok(AssignmentEnd::Exit(WorkerExit::Done)),
            HB_FENCED => return Ok(AssignmentEnd::Fenced),
            _ => {}
        }

        let mut kill_after_journal = false;
        match chaos.take(round) {
            Some(ChaosAction::Kill) => return Ok(AssignmentEnd::Exit(WorkerExit::Killed)),
            Some(ChaosAction::KillAfterJournal) => kill_after_journal = true,
            Some(ChaosAction::Hang(d)) => {
                // Fully wedged: the heartbeater goes silent too.
                plane.gate.paused.store(true, Ordering::Relaxed);
                std::thread::sleep(d);
                plane.gate.paused.store(false, Ordering::Relaxed);
            }
            Some(ChaosAction::Delay(d)) => {
                // Alive-but-slow: just sleep. The heartbeater keeps
                // liveness flowing off its own session, so a slow
                // round can no longer starve heartbeats into a false
                // fence.
                std::thread::sleep(d);
            }
            None => {}
        }

        let (frame, gross, refund) = campaign.run_shard(&mut ctx, round);
        let from = wal.store.len();
        wal.store.merge(frame.clone());
        wal.ledger.debit(gross)?;
        wal.ledger.refund(refund);
        wal.writer.append_round(round, &wal.store, from, &wal.ledger)?;
        if kill_after_journal {
            return Ok(AssignmentEnd::Exit(WorkerExit::Killed));
        }

        match submit_frame_http(plane, worker_id, a.shard, round, gross, refund, &frame, stats)? {
            (FrameVerdict::Rejected, true) => {
                return Err(DistError::Protocol("fresh frame rejected"))
            }
            (_, false) => return Ok(AssignmentEnd::Fenced),
            _ => {}
        }
    }
    Ok(AssignmentEnd::Completed)
}

/// One frame submission round trip.
#[allow(clippy::too_many_arguments)]
fn submit_frame_http(
    plane: &mut HttpPlane,
    worker: u64,
    shard: u32,
    round: u32,
    gross: u64,
    refund: u64,
    frame: &ResultStore,
    stats: &mut WorkerStats,
) -> Result<(FrameVerdict, bool), DistError> {
    let body = work::encode_frame_submit(worker, shard, round, gross, refund, frame);
    let resp = plane.request("/api/v2/work/frame", &body, "frame submission refused", stats)?;
    stats.frames_sent += 1;
    work::decode_verdict(&resp).map_err(DistError::Protocol)
}
