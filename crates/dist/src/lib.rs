//! # shears-dist
//!
//! Fault-tolerant distributed campaign execution: a **coordinator**
//! that partitions the probe fleet into deterministic shards and a
//! **worker fleet** that executes them over the REST API, with the
//! robustness machinery the single-process campaign never needed —
//! heartbeats, deadline-based failure detection, shard reassignment,
//! per-worker write-ahead journals, and an idempotent merge.
//!
//! The headline invariant is *bit-identical distribution*: because
//! every sample is drawn from a per-`(probe, round)` keyed RNG stream,
//! a shard's output depends only on *what* it covers, never on *who*
//! ran it or *when*. The coordinator merges accepted rounds in shard
//! order and settles credits at round granularity, so the final
//! [`shears_atlas::ResultStore`] is byte-for-byte the store
//! [`shears_atlas::Campaign::run`] would have produced — regardless of
//! worker count, crash schedule, or how many times a shard bounced
//! between owners.
//!
//! The moving parts:
//!
//! - [`Coordinator`] — owns the [`shears_api::WorkQueue`], hosts it
//!   behind `/api/v2/work/*`, runs the bounded control loop (sweep →
//!   wait → degraded/strict decision) and the shard-order merge.
//! - [`run_worker`] — the worker loop: register, validate the
//!   campaign digests, poll for a shard, execute it round by round
//!   behind a local WAL, stream frames back, resume from the WAL
//!   after a crash. Two wire shapes ([`WorkTransport`]): the default
//!   pipelined binary TCP stream (windowed frame submission, async
//!   verdicts, pushed fencing/abort, transport-level heartbeats) and
//!   the blocking HTTP compat shim.
//! - [`ChaosProxy`] — the seeded fault-injection schedule the tests
//!   and the chaos harness thread between a worker and its rounds:
//!   kills, hangs (silent — trips the failure detector) and delays.
//! - [`run_distributed`] — the in-process harness: one coordinator,
//!   N worker threads over a real localhost HTTP server, optional
//!   restart-on-kill supervision.
//!
//! ```no_run
//! use shears_atlas::{CampaignConfig, PlatformConfig};
//! use shears_dist::{run_distributed, DistConfig, FleetSpec};
//!
//! let outcome = run_distributed(
//!     &PlatformConfig::quick(7),
//!     CampaignConfig::quick(),
//!     DistConfig::quick(4),
//!     FleetSpec::clean(3),
//!     std::path::Path::new("/tmp/shears-dist"),
//! )
//! .unwrap();
//! println!("{} samples, {} spent", outcome.store.len(), outcome.ledger.spent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod harness;
pub mod worker;

pub use chaos::{ChaosAction, ChaosProxy};
pub use coordinator::{Coordinator, DistConfig, DistOutcome};
pub use harness::{run_distributed, FleetSpec};
pub use worker::{run_worker, run_worker_stats, WorkTransport, WorkerConfig, WorkerExit, WorkerStats};

use shears_api::client::ClientError;
use shears_atlas::{CreditError, JournalError};

/// Why a distributed campaign (or one of its workers) stopped.
#[derive(Debug)]
pub enum DistError {
    /// The credit grant ran out at the merge barrier.
    Credits(CreditError),
    /// Strict mode: a round stalled with no live workers left to
    /// deliver the listed shards.
    Stalled {
        /// The round the merge was waiting on.
        round: u32,
        /// Shards that never delivered it.
        missing: Vec<u32>,
    },
    /// The campaign was aborted (strict-mode failure seen from the
    /// other side, or an explicit [`shears_api::WorkQueue::abort`]).
    Aborted,
    /// An HTTP round trip failed.
    Api(ClientError),
    /// A worker's write-ahead journal could not be written or replayed.
    Journal(JournalError),
    /// A filesystem operation outside the journal failed.
    Io(std::io::Error),
    /// The peer broke the work protocol.
    Protocol(&'static str),
    /// The worker's platform does not reproduce the coordinator's
    /// campaign (seed or topology mismatch — running it would merge
    /// garbage).
    CampaignMismatch,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Credits(e) => write!(f, "distributed campaign stopped: {e}"),
            DistError::Stalled { round, missing } => write!(
                f,
                "round {round} stalled with no live workers (missing shards {missing:?})"
            ),
            DistError::Aborted => write!(f, "distributed campaign aborted"),
            DistError::Api(e) => write!(f, "work API request failed: {e}"),
            DistError::Journal(e) => write!(f, "worker journal failed: {e}"),
            DistError::Io(e) => write!(f, "distributed campaign i/o failed: {e}"),
            DistError::Protocol(what) => write!(f, "work protocol violation: {what}"),
            DistError::CampaignMismatch => {
                write!(f, "worker platform does not reproduce the coordinator's campaign")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Credits(e) => Some(e),
            DistError::Api(e) => Some(e),
            DistError::Journal(e) => Some(e),
            DistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CreditError> for DistError {
    fn from(e: CreditError) -> Self {
        DistError::Credits(e)
    }
}

impl From<ClientError> for DistError {
    fn from(e: ClientError) -> Self {
        DistError::Api(e)
    }
}

impl From<JournalError> for DistError {
    fn from(e: JournalError) -> Self {
        DistError::Journal(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}
