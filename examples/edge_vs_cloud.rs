//! The edge-vs-cloud reality check (extension experiment EXT1).
//!
//! §5 of the paper cites evidence that an edge server co-located with
//! the basestation barely beats a datacenter ~1000 km away. Here we
//! deploy an edge site at *every* metro PoP in the world — the most
//! generous general-purpose edge imaginable — and measure what it buys
//! each continent over simply using the nearest cloud region.
//!
//! ```sh
//! cargo run --release --example edge_vs_cloud
//! ```

use latency_shears::analysis::edgegain::edge_gain_study;
use latency_shears::analysis::report::{ms, pct, Table};
use latency_shears::prelude::*;

fn main() {
    let mut platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 900,
            seed: 23,
        },
        ..PlatformConfig::default()
    });
    println!(
        "deploying an edge site at every metro PoP ({} countries)...\n",
        platform.countries().len()
    );
    let report = edge_gain_study(&mut platform, 120);

    let mut t = Table::new(vec![
        "continent",
        "probes",
        "cloud median ms",
        "edge median ms",
        "median gain ms",
        "probes gaining <10 ms",
    ]);
    for row in &report.rows {
        t.row(vec![
            row.continent.to_string(),
            row.probes.to_string(),
            ms(row.cloud_median_ms),
            ms(row.edge_median_ms),
            ms(row.median_gain_ms),
            pct(row.small_gain_fraction),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: in well-connected continents the cloud is already close,\n\
         so blanket edge deployment buys little (the paper's argument);\n\
         under-served regions see real gains — \"efforts should instead\n\
         focus on those regions\" (§6)."
    );
}
