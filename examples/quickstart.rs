//! Quickstart: build the platform, run a small campaign, print the
//! paper's headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use latency_shears::analysis::headline::headline_numbers;
use latency_shears::analysis::report::{pct, Table};
use latency_shears::prelude::*;

fn main() {
    // 1. The platform: 101 cloud regions, a ~600-probe fleet (scale the
    //    target_size up to 3200 for the paper-scale run).
    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 600,
            seed: 42,
        },
        ..PlatformConfig::default()
    });
    println!(
        "platform: {} probes in {} countries, {} cloud regions, {} topology nodes",
        platform.probes().len(),
        platform
            .probes()
            .iter()
            .map(|p| p.country.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len(),
        platform.catalog().regions().len(),
        platform.topology().node_count(),
    );

    // 2. The campaign: ping every 3 hours, 3 packets, nearest targets.
    let cfg = CampaignConfig {
        rounds: 16,
        ..CampaignConfig::quick()
    };
    let store = Campaign::new(&platform, cfg)
        .run_parallel(std::thread::available_parallelism().map_or(2, |n| n.get()))
        .expect("credit grant is unlimited in quick configs");
    println!(
        "campaign: {} samples, {:.1}% responded\n",
        store.len(),
        store.response_rate() * 100.0
    );

    // 3. The analysis.
    let data = CampaignData::new(&platform, &store);
    let h = headline_numbers(&data);

    let mut t = Table::new(vec!["headline (paper \u{2192} measured)", "value"]);
    t.row(vec![
        "countries with min RTT < 10 ms   (paper: 32)".to_string(),
        h.countries_under_10ms.to_string(),
    ]);
    t.row(vec![
        "countries in 10-20 ms            (paper: 21)".to_string(),
        h.countries_10_to_20ms.to_string(),
    ]);
    t.row(vec![
        "countries above PL               (paper: 16)".to_string(),
        format!(
            "{} ({} African)",
            h.countries_above_pl, h.countries_above_pl_african
        ),
    ]);
    t.row(vec![
        "EU probes within MTP             (paper: ~80%)".to_string(),
        pct(h.eu_probes_within_mtp),
    ]);
    t.row(vec![
        "NA probes within MTP             (paper: ~80%)".to_string(),
        pct(h.na_probes_within_mtp),
    ]);
    t.row(vec![
        "Africa probes within PL          (paper: ~75%)".to_string(),
        pct(h.africa_within_pl),
    ]);
    t.row(vec![
        "LatAm probes within PL           (paper: ~75%)".to_string(),
        pct(h.latam_within_pl),
    ]);
    t.row(vec![
        "EU+NA rounds under 40 ms         (Facebook check)".to_string(),
        pct(h.eu_na_rounds_under_40ms),
    ]);
    t.row(vec![
        "wireless / wired RTT ratio       (paper: ~2.5x)".to_string(),
        h.wireless_ratio
            .map(|r| format!("{r:.2}x"))
            .unwrap_or_else(|| "-".into()),
    ]);
    print!("{}", t.render());

    println!(
        "\nimplied feasibility zone: latency {:.0}..{:.0} ms, data >= {:.0} GB/entity/day",
        h.feasibility_zone.latency_floor_ms,
        h.feasibility_zone.latency_ceiling_ms,
        h.feasibility_zone.bandwidth_gain_gb_per_day,
    );
}
