//! The anatomy of one measurement: the exact bytes a probe would put on
//! the wire, the hop-by-hop path they take, and the event-driven
//! execution of the round — the lowest-level view the simulator offers.
//!
//! ```sh
//! cargo run --release --example packet_anatomy -- DE
//! ```

use latency_shears::netsim::packetsim::ping_event_driven;
use latency_shears::netsim::queue::DiurnalLoad;
use latency_shears::netsim::routing::Router;
use latency_shears::netsim::stochastic::SimRng;
use latency_shears::netsim::wire::EchoPacket;
use latency_shears::prelude::*;

fn main() {
    let code = std::env::args()
        .nth(1)
        .map(|c| c.to_uppercase())
        .unwrap_or_else(|| "DE".to_string());

    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 400,
            seed: 13,
        },
        ..PlatformConfig::default()
    });
    let Some(probe) = platform
        .probes()
        .iter()
        .find(|p| p.country == code && !p.is_privileged())
    else {
        eprintln!("no probe in {code}");
        std::process::exit(1);
    };
    let target = platform.targets_for(probe, 1, 1)[0];
    let region = platform.region(target as usize);

    // 1. The wire bytes.
    let request = EchoPacket::atlas_default(true, 1001, 0);
    let encoded = request.encode();
    println!(
        "echo request: {} bytes on the wire (IPv4 20 + ICMP 8 + payload {})",
        encoded.len(),
        request.payload.len()
    );
    print!("  ");
    for (i, b) in encoded.iter().take(28).enumerate() {
        print!("{b:02x}{}", if i % 4 == 3 { " " } else { "" });
    }
    println!("…");
    let reply = request.reply_to();
    println!(
        "echo reply swaps {:?} <-> {:?}, keeps ident={} seq={}\n",
        request.src, request.dst, reply.ident, reply.seq
    );

    // 2. The path.
    let mut router = Router::new(platform.topology());
    let path = router
        .path(platform.probe_node(probe.id), platform.dc_node(target as usize))
        .expect("connected");
    println!(
        "route: probe #{} ({}, {}) -> {} — {} hops, {:.2} ms one-way floor",
        probe.id.0,
        code,
        probe.access.tech.atlas_tag(),
        region.label(),
        path.hop_count(),
        path.base_one_way_ms
    );
    for (i, &node) in path.nodes.iter().enumerate() {
        let n = platform.topology().node(node);
        println!("  {:>2}  {:<14} {}", i, format!("{:?}", n.kind), n.country);
    }

    // 3. Event-driven execution of a 3-packet round.
    let mut rng = SimRng::new(99);
    let outcome = ping_event_driven(
        platform.topology(),
        path,
        Some(probe.access),
        DiurnalLoad::residential(),
        SimTime::from_hours(20), // local evening somewhere
        3,
        4000.0,
        &mut rng,
    );
    println!(
        "\nevent-driven round: {}/{} replies, RTTs: {}",
        outcome.received,
        outcome.sent,
        outcome
            .rtts_ms()
            .iter()
            .map(|r| format!("{r:.2} ms"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(min) = outcome.min_ms() {
        println!("round minimum (what the campaign stores): {min:.2} ms");
    }
}
