//! Per-country cloud-reachability report (the Fig. 4 drill-down).
//!
//! ```sh
//! cargo run --release --example country_report -- BR KE DE
//! ```
//!
//! With no arguments, reports on a representative set.

use latency_shears::analysis::proximity::{country_min_report, CountryMinReport, FIG4_BUCKETS};
use latency_shears::analysis::report::{ms, Table};
use latency_shears::analysis::stats::Summary;
use latency_shears::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: Vec<String> = if args.is_empty() {
        ["US", "DE", "BR", "KE", "IN", "AU", "TD"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.iter().map(|s| s.to_uppercase()).collect()
    };

    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 800,
            seed: 7,
        },
        ..PlatformConfig::default()
    });
    let store = Campaign::new(
        &platform,
        CampaignConfig {
            rounds: 12,
            ..CampaignConfig::quick()
        },
    )
    .run_parallel(4)
    .expect("quick config has unlimited credits");
    let data = CampaignData::new(&platform, &store);
    let fig4 = country_min_report(&data);

    for code in &requested {
        report_country(&platform, &data, &fig4, code);
    }
}

fn report_country(
    platform: &Platform,
    data: &CampaignData<'_>,
    fig4: &CountryMinReport,
    code: &str,
) {
    let Some(country) = platform.countries().by_code(code) else {
        println!("== {code}: unknown country code ==\n");
        return;
    };
    println!(
        "== {} ({}) — {} | population {:.1} M | infra {:?} ==",
        country.name,
        country.code,
        country.continent,
        country.population_m,
        country.tier()
    );

    match fig4.min_by_country.get(code) {
        Some(&min) => {
            let bucket = CountryMinReport::bucket_of(min);
            let (lo, hi) = FIG4_BUCKETS[bucket];
            println!(
                "best probe to any datacenter: {} ms (Fig. 4 bucket {}..{} ms)",
                ms(min),
                lo,
                if hi.is_finite() {
                    format!("{hi}")
                } else {
                    "inf".into()
                }
            );
        }
        None => println!("no responding probes in this campaign"),
    }

    // Nearest catalogue regions by geography.
    let mut t = Table::new(vec!["nearest regions", "distance km"]);
    for r in platform.catalog().nearest(country.centroid, 3) {
        t.row(vec![
            r.label(),
            format!("{:.0}", country.centroid.distance_km(r.location)),
        ]);
    }
    print!("{}", t.render());

    // Distribution over this country's probes.
    let rtts: Vec<f64> = data
        .filtered_responded()
        .filter(|(p, _)| p.country == code)
        .map(|(_, s)| f64::from(s.min_ms))
        .collect();
    match Summary::of(&rtts) {
        Some(s) => println!(
            "all rounds: n={} min={} p25={} median={} p95={} max={}\n",
            s.n,
            ms(s.min),
            ms(s.p25),
            ms(s.median),
            ms(s.p95),
            ms(s.max)
        ),
        None => println!("no samples\n"),
    }
}
