//! Drive the measurement platform over its HTTP API.
//!
//! Starts the Atlas-style REST server on an ephemeral port, then acts
//! as a client: inventories probes, creates a ping measurement against
//! a Frankfurt region, and fetches the results — the workflow the
//! paper's authors ran against the real RIPE Atlas API.
//!
//! ```sh
//! cargo run --release --example atlas_api_server
//! ```

use latency_shears::api::dto::CreateMeasurementDto;
use latency_shears::api::{ApiClient, ApiServer, AtlasService};
use latency_shears::prelude::*;

fn main() {
    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 400,
            seed: 31,
        },
        ..PlatformConfig::default()
    });
    let server = ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform))
        .expect("bind ephemeral port");
    println!("API server listening on http://{}", server.local_addr());

    let client = ApiClient::new(server.local_addr());

    // Inventory.
    let regions = client.list_regions().expect("list regions");
    println!("catalogue: {} regions", regions.len());
    let frankfurt = regions
        .iter()
        .find(|r| r.city == "Frankfurt" && r.provider == "Amazon")
        .expect("Frankfurt in catalogue");
    println!(
        "target: {}/{} ({})",
        frankfurt.provider, frankfurt.code, frankfurt.city
    );

    let de_probes = client
        .list_probes(Some("DE"), None, 100)
        .expect("list probes");
    println!("probes in DE: {}", de_probes.len());

    // Create and run a measurement.
    println!("credits before: {}", client.credits().unwrap());
    let m = client
        .create_measurement(&CreateMeasurementDto {
            target_region: frankfurt.index,
            packets: 3,
            rounds: 4,
            probe_limit: 40,
            country: Some("DE".into()),
            fault_profile: None,
            retries: None,
            durability: true,
        })
        .expect("create measurement");
    println!(
        "measurement #{}: {} probes, {} results, {} credits",
        m.id, m.probes, m.results, m.credits_spent
    );
    println!("credits after: {}", client.credits().unwrap());

    // Fetch and summarise results.
    let results = client.results(m.id).expect("fetch results");
    let mut rtts: Vec<f64> = results.iter().filter_map(|r| r.min_ms).collect();
    rtts.sort_by(f64::total_cmp);
    if !rtts.is_empty() {
        println!(
            "German probes to {}: n={} min={:.1} ms median={:.1} ms max={:.1} ms",
            frankfurt.city,
            rtts.len(),
            rtts[0],
            rtts[rtts.len() / 2],
            rtts[rtts.len() - 1],
        );
    }

    server.shutdown().unwrap();
    println!("server stopped.");
}
