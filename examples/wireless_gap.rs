//! The Fig. 7 study: wired vs wireless last-mile access.
//!
//! Reproduces §4.3's finding that wireless-tagged probes take ≈2.5×
//! longer to reach the nearest cloud region, with the paper's matching
//! discipline (shared countries, baseline verification).
//!
//! ```sh
//! cargo run --release --example wireless_gap
//! ```

use latency_shears::analysis::lastmile::last_mile_report;
use latency_shears::analysis::report::{ms_opt, Table};
use latency_shears::prelude::*;

fn main() {
    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 1000,
            seed: 17,
        },
        ..PlatformConfig::default()
    });
    let store = Campaign::new(
        &platform,
        CampaignConfig {
            rounds: 24, // three simulated days, 3-hourly
            ..CampaignConfig::quick()
        },
    )
    .run_parallel(4)
    .expect("quick config has unlimited credits");
    let data = CampaignData::new(&platform, &store);

    let report = last_mile_report(&data, SimTime::from_hours(12))
        .expect("fleet has both wired- and wireless-tagged probes");

    println!(
        "matched countries: {} | wired probes: {} | wireless probes: {}",
        report.matched_countries, report.wired_probes, report.wireless_probes
    );
    println!(
        "campaign medians: wired {:.1} ms, wireless {:.1} ms  ->  ratio {:.2}x, +{:.1} ms",
        report.wired_median_ms, report.wireless_median_ms, report.ratio, report.added_ms
    );
    println!("(paper: wireless ~2.5x wired, 10-40 ms added)\n");

    let mut t = Table::new(vec!["t (h)", "wired median ms", "wireless median ms"]);
    for bin in &report.bins {
        t.row(vec![
            format!("{}", bin.at.as_hours()),
            ms_opt(bin.wired_ms),
            ms_opt(bin.wireless_ms),
        ]);
    }
    print!("{}", t.render());
}
