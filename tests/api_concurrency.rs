//! Concurrent API consistency: 8 reader threads hammer the read
//! endpoints over real TCP while a writer creates (and deletes)
//! measurements. Pins the sharded-state guarantees:
//!
//! * no torn reads — a measurement's result count never changes after
//!   it first becomes visible (measurements are immutable once
//!   created, and stats always describe complete rounds),
//! * monotone ledger — with no fault profile there are no refunds, so
//!   the balance only ever decreases, and the final balance equals the
//!   initial grant minus everything the writer was charged,
//! * every response is a well-formed status the route allows — nothing
//!   500s, deadlocks, or panics under the mixed load.
//!
//! JSON-content assertions are skipped under the offline serde stub
//! (which serialises to empty bodies); status/framing assertions and
//! the no-deadlock property hold everywhere.
//!
//! The whole battery runs twice — once against the readiness-driven
//! reactor engine and once against the worker-pool compat shim — so
//! the invariants are provably server-architecture-independent: they
//! live in the sharded service state, not in accidental serialisation
//! by either engine's threading model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use latency_shears::api::client::ApiSession;
use latency_shears::api::dto::{MeasurementDto, MeasurementStatsDto};
use latency_shears::api::server::ServerConfig;
use latency_shears::api::{ApiClient, ApiServer, AtlasService};
use latency_shears::prelude::*;

const INITIAL_CREDITS: u64 = 1_000_000;
const WRITER_MEASUREMENTS: u64 = 6;

/// Sets the flag on drop, so a panicking writer can never leave the
/// reader threads looping forever (which would hang the whole test
/// instead of failing it).
struct DoneOnDrop(Arc<AtomicBool>);
impl Drop for DoneOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Whether a real serde_json is linked (the offline stub serialises
/// everything to empty bodies, so JSON content cannot be checked).
fn json_enabled() -> bool {
    serde_json::to_vec(&0u8).map_or(false, |v| !v.is_empty())
}

#[test]
fn readers_never_observe_torn_state_while_writer_churns_reactor() {
    // Reactor engine: sessions cost no threads; the compute pool only
    // needs enough slots for genuinely concurrent handler work.
    churn_against(ServerConfig::reactor(2, 6, 64));
}

#[test]
fn readers_never_observe_torn_state_while_writer_churns_worker_pool() {
    // Worker-pool shim: each worker owns one connection for its
    // keep-alive lifetime, so the pool must outsize the persistent
    // reader sessions or the writer's short-lived connections starve
    // behind them — 8 readers + writer + slack, independent of the
    // core-count-derived default.
    churn_against(ServerConfig::worker_pool(12, 64));
}

fn churn_against(config: ServerConfig) {
    let platform = Platform::build(&PlatformConfig::quick(4));
    let server = ApiServer::spawn_with("127.0.0.1:0", AtlasService::new(platform), config).unwrap();
    let addr = server.local_addr();
    let json = json_enabled();
    let writer_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Writer: create measurements back to back, then delete one.
        let done = Arc::clone(&writer_done);
        let writer = s.spawn(move || {
            let _done = DoneOnDrop(done);
            let client = ApiClient::new(addr);
            let mut spent_total = 0u64;
            let mut refunded_total = 0u64;
            for region in 0..WRITER_MEASUREMENTS {
                let body = format!(
                    r#"{{"target_region": {region}, "rounds": 2, "probe_limit": 10}}"#
                );
                let (status, resp) = client
                    .request("POST", "/api/v2/measurements", Some(body.as_bytes()))
                    .unwrap();
                // The offline serde stub cannot parse the body, so the
                // service answers 400; the POST still loads the write
                // path concurrently with the readers.
                let expect = if json { 201 } else { 400 };
                assert_eq!(status, expect, "create must succeed under reader load");
                if json {
                    let m: MeasurementDto = serde_json::from_slice(&resp).unwrap();
                    spent_total += m.credits_spent;
                    refunded_total += m.credits_refunded;
                }
            }
            // Deleting one mid-flight must not disturb the others
            // (offline nothing was created, so the id is unknown).
            let (status, _) = client
                .request("DELETE", &format!("/api/v2/measurements/{WRITER_MEASUREMENTS}"), None)
                .unwrap();
            assert_eq!(status, if json { 204 } else { 404 });
            (spent_total, refunded_total)
        });

        // Readers: mixed GET workload over keep-alive sessions.
        let readers: Vec<_> = (0..8)
            .map(|t| {
                let done = Arc::clone(&writer_done);
                s.spawn(move || {
                    let mut session = ApiSession::connect(addr).unwrap();
                    // First result count seen per measurement id: once
                    // visible, it must never change (no torn reads).
                    let mut seen_results: HashMap<u64, usize> = HashMap::new();
                    let mut last_balance = u64::MAX;
                    let mut extra_rounds = 3u32;
                    loop {
                        if done.load(Ordering::SeqCst) {
                            // Keep reading a little after the writer
                            // finishes so the final state is covered.
                            if extra_rounds == 0 {
                                break;
                            }
                            extra_rounds -= 1;
                        }
                        let (status, body) =
                            session.request("GET", "/api/v2/credits", None).unwrap();
                        assert_eq!(status, 200);
                        if json {
                            let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
                            let balance = v["balance"].as_u64().unwrap();
                            assert!(
                                balance <= last_balance,
                                "no-refund workload: balance must be monotone \
                                 ({balance} after {last_balance}) in reader {t}"
                            );
                            last_balance = balance;
                        }
                        let (status, _) =
                            session.request("GET", "/api/v2/measurements", None).unwrap();
                        assert_eq!(status, 200);
                        for id in 1..=WRITER_MEASUREMENTS {
                            let (status, body) = session
                                .request("GET", &format!("/api/v2/measurements/{id}/results"), None)
                                .unwrap();
                            assert!(
                                status == 200 || status == 404,
                                "results/{id} answered {status}"
                            );
                            if status == 200 && json {
                                let rows: Vec<serde_json::Value> =
                                    serde_json::from_slice(&body).unwrap();
                                let first = *seen_results.entry(id).or_insert(rows.len());
                                assert_eq!(
                                    rows.len(),
                                    first,
                                    "measurement {id} result count changed mid-read"
                                );
                            }
                            let (status, body) = session
                                .request("GET", &format!("/api/v2/measurements/{id}/stats"), None)
                                .unwrap();
                            assert!(
                                status == 200 || status == 404,
                                "stats/{id} answered {status}"
                            );
                            if status == 200 && json {
                                let stats: MeasurementStatsDto =
                                    serde_json::from_slice(&body).unwrap();
                                assert!(stats.responded <= stats.samples);
                                if let Some(&n) = seen_results.get(&id) {
                                    assert_eq!(
                                        stats.samples, n,
                                        "stats for {id} must describe complete rounds"
                                    );
                                }
                            }
                        }
                    }
                })
            })
            .collect();

        let (spent, refunded) = writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }

        // Final ledger arithmetic is exact: the delete does not refund,
        // and no reader path ever touches the ledger.
        if json {
            let client = ApiClient::new(addr);
            let balance = client.credits().unwrap();
            assert_eq!(balance, INITIAL_CREDITS - spent + refunded);
        }
    });
    server.shutdown().unwrap();
}
