//! Determinism guarantees: the whole reproduction is a pure function of
//! its seeds — the property that makes EXPERIMENTS.md reproducible.

use latency_shears::analysis::kernels::{self, RangeQuery, ScanCols};
use latency_shears::prelude::*;

fn platform(seed: u64) -> Platform {
    Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 150,
            seed,
        },
        ..PlatformConfig::default()
    })
}

fn campaign(platform: &Platform, seed: u64) -> ResultStore {
    Campaign::new(
        platform,
        CampaignConfig {
            rounds: 4,
            targets_per_probe: 2,
            adjacent_targets: 1,
            seed,
            ..CampaignConfig::quick()
        },
    )
    .run()
    .unwrap()
}

#[test]
fn identical_seeds_produce_identical_worlds_and_samples() {
    let p1 = platform(9);
    let p2 = platform(9);
    assert_eq!(p1.topology().node_count(), p2.topology().node_count());
    assert_eq!(p1.topology().link_count(), p2.topology().link_count());
    let s1 = campaign(&p1, 1);
    let s2 = campaign(&p2, 1);
    assert_eq!(s1.samples(), s2.samples());
}

#[test]
fn campaign_seed_changes_samples_but_not_schedule() {
    let p = platform(9);
    let a = campaign(&p, 1);
    let b = campaign(&p, 2);
    // Values differ…
    assert_ne!(a.samples(), b.samples());
    // …but the deterministic structure matches where both probes were
    // online: any (probe, region, at) key in both stores appears once.
    use std::collections::HashSet;
    let keys = |s: &ResultStore| -> HashSet<(ProbeId, u16, u64)> {
        s.samples()
            .iter()
            .map(|x| (x.probe, x.region, x.at.as_nanos()))
            .collect()
    };
    let ka = keys(&a);
    let kb = keys(&b);
    assert_eq!(ka.len(), a.len(), "no duplicate keys");
    // Online-ness is seed-dependent, but the shared subset is large.
    assert!(ka.intersection(&kb).count() > ka.len() / 2);
}

#[test]
fn fleet_seed_changes_probe_placement() {
    let p1 = platform(9);
    let p2 = platform(10);
    let moved = p1
        .probes()
        .iter()
        .zip(p2.probes())
        .filter(|(a, b)| a.location != b.location)
        .count();
    assert!(moved > p1.probes().len() / 2);
}

/// The pre-frame analysis path, kept verbatim: every figure used to
/// re-derive its inputs with its own O(n) iterator pass over the store.
/// The indexed [`CampaignFrame`] must reproduce these bit for bit.
mod iterator_reference {
    use super::*;
    use std::collections::HashMap;

    pub fn per_probe_min(platform: &Platform, store: &ResultStore) -> HashMap<ProbeId, f64> {
        let mut min: HashMap<ProbeId, f64> = HashMap::new();
        for s in store.samples() {
            let p = &platform.probes()[s.probe.index()];
            if p.is_privileged() || !s.responded() {
                continue;
            }
            let v = f64::from(s.min_ms);
            min.entry(p.id).and_modify(|m| *m = m.min(v)).or_insert(v);
        }
        min
    }

    pub fn per_country_min<'a>(
        platform: &'a Platform,
        store: &ResultStore,
    ) -> HashMap<&'a str, f64> {
        let mut min: HashMap<&str, f64> = HashMap::new();
        for s in store.samples() {
            let p = &platform.probes()[s.probe.index()];
            if p.is_privileged() || !s.responded() {
                continue;
            }
            let v = f64::from(s.min_ms);
            min.entry(p.country.as_str())
                .and_modify(|m| *m = m.min(v))
                .or_insert(v);
        }
        min
    }

    pub fn samples_to_closest_dc(platform: &Platform, store: &ResultStore) -> Vec<(ProbeId, f64)> {
        let mut best: HashMap<ProbeId, (u16, f64)> = HashMap::new();
        for s in store.samples() {
            let p = &platform.probes()[s.probe.index()];
            if p.is_privileged() || !s.responded() {
                continue;
            }
            let v = f64::from(s.min_ms);
            best.entry(p.id)
                .and_modify(|(region, m)| {
                    if v < *m {
                        *region = s.region;
                        *m = v;
                    }
                })
                .or_insert((s.region, v));
        }
        store
            .samples()
            .iter()
            .filter_map(|s| {
                let p = &platform.probes()[s.probe.index()];
                if p.is_privileged() || !s.responded() {
                    return None;
                }
                best.get(&p.id)
                    .is_some_and(|(region, _)| *region == s.region)
                    .then_some((p.id, f64::from(s.min_ms)))
            })
            .collect()
    }
}

/// Golden equivalence: the Fig. 4–7 series and the headline numbers off
/// the indexed frame are bit-identical to the historical per-figure
/// iterator passes on the same campaign.
#[test]
fn frame_indexes_reproduce_the_iterator_path_bit_for_bit() {
    use latency_shears::analysis::proximity::CountryMinReport;
    use std::collections::HashMap;

    let p = platform(9);
    let store = campaign(&p, 1);
    let data = CampaignData::new(&p, &store);

    // Ingredients first: the three derived series every figure draws on.
    let probe_ref = iterator_reference::per_probe_min(&p, &store);
    assert_eq!(data.per_probe_min(), probe_ref);
    let country_ref = iterator_reference::per_country_min(&p, &store);
    assert_eq!(data.per_country_min(), country_ref);
    let closest_ref = iterator_reference::samples_to_closest_dc(&p, &store);
    let closest: Vec<(ProbeId, f64)> = data
        .samples_to_closest_dc()
        .into_iter()
        .map(|(pr, v)| (pr.id, v))
        .collect();
    assert_eq!(closest, closest_ref, "closest-DC rows, in store order");

    // Fig. 4: map, buckets and the above-PL list.
    let fig4 = country_min_report(&data);
    let owned: HashMap<String, f64> = country_ref
        .iter()
        .map(|(&c, &v)| (c.to_string(), v))
        .collect();
    assert_eq!(fig4.min_by_country, owned);
    let mut buckets = [0usize; 6];
    let mut above_pl: Vec<String> = Vec::new();
    for (&c, &v) in &country_ref {
        buckets[CountryMinReport::bucket_of(v)] += 1;
        if v > 100.0 {
            above_pl.push(c.to_string());
        }
    }
    above_pl.sort();
    assert_eq!(fig4.bucket_counts, buckets);
    assert_eq!(fig4.above_pl, above_pl);

    // Fig. 5: one ECDF per continent over the per-probe minima.
    let fig5 = probe_min_cdfs(&data);
    assert_eq!(fig5.by_continent.len(), 6);
    for (c, e) in &fig5.by_continent {
        let values: Vec<f64> = p
            .probes()
            .iter()
            .filter(|pr| pr.continent == *c)
            .filter_map(|pr| probe_ref.get(&pr.id).copied())
            .collect();
        assert_eq!(e, &Ecdf::new(values), "Fig. 5 {c}");
    }

    // Fig. 6: one ECDF per continent over the closest-DC rounds.
    let fig6 = all_samples_cdfs(&data);
    for (c, e) in &fig6.by_continent {
        let values: Vec<f64> = closest_ref
            .iter()
            .filter(|(id, _)| p.probes()[id.index()].continent == *c)
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(e, &Ecdf::new(values), "Fig. 6 {c}");
    }

    // Fig. 7 and the headline consume only the series proven identical
    // above; recomputing them on a fresh view (fresh frame build) must
    // reproduce every field at full precision.
    let fresh = CampaignData::new(&p, &store);
    let fig7 = last_mile_report(&data, SimTime::from_hours(6));
    let fig7_again = last_mile_report(&fresh, SimTime::from_hours(6));
    assert_eq!(
        serde_json::to_string(&fig7).unwrap(),
        serde_json::to_string(&fig7_again).unwrap()
    );
    let head = headline_numbers(&data);
    let head_again = headline_numbers(&fresh);
    assert_eq!(
        serde_json::to_string(&head).unwrap(),
        serde_json::to_string(&head_again).unwrap()
    );
    assert_eq!(head.countries_under_10ms, buckets[0]);
    assert_eq!(head.countries_10_to_20ms, buckets[1]);
    assert_eq!(head.countries_above_pl, above_pl.len());
}

/// Lost rounds carry `INFINITY` markers that JSON cannot express; the
/// `inf_as_null` mapping must keep a full campaign dump loss-exact
/// through an export/import round trip.
#[test]
fn campaign_dump_round_trips_lost_rounds_exactly() {
    let p = platform(9);
    let mut store = campaign(&p, 1);
    // Whether the stochastic model loses a round at this scale is
    // seed-dependent; append one so the marker path always runs.
    store.push(RttSample {
        probe: ProbeId(0),
        region: 0,
        at: SimTime::from_hours(999),
        min_ms: f32::INFINITY,
        avg_ms: f32::INFINITY,
        sent: 3,
        received: 0,
    });
    let lost = store.samples().iter().filter(|s| !s.responded()).count();
    assert!(lost > 0);

    let text = store.to_jsonl();
    assert!(text.contains("null"), "lost rounds must serialise as null");
    let back = ResultStore::from_jsonl(&text).expect("own dump parses");
    assert_eq!(back.samples(), store.samples(), "bit-exact round trip");
    assert_eq!(
        back.samples().iter().filter(|s| !s.responded()).count(),
        lost
    );
    for s in back.samples().iter().filter(|s| !s.responded()) {
        assert!(s.min_ms.is_infinite() && s.avg_ms.is_infinite());
    }
}

/// The tentpole guarantee of the shared route table: for every
/// probe→DC pair the campaign can measure, the precomputed path —
/// links, nodes and one-way floor — is bit-identical to what the
/// incremental Dijkstra router resolves for that pair.
#[test]
fn route_table_matches_router_for_every_probe_dc_pair() {
    use latency_shears::netsim::Router;

    let p = platform(9);
    let (same_continent, adjacent) = (2, 1);
    let table = p.route_table(same_continent, adjacent, 4);
    let mut router = Router::new(p.topology());
    let mut pairs = 0usize;
    for probe in p.probes() {
        let from = p.probe_node(probe.id);
        for &target in &p.targets_for(probe, same_continent, adjacent) {
            let to = p.dc_node(target as usize);
            match router.path(from, to) {
                Some(want) => {
                    let got = table
                        .path(from, to)
                        .expect("routed pair present in table")
                        .to_path_info();
                    assert_eq!(got.links, want.links, "links {from:?}->{to:?}");
                    assert_eq!(got.nodes, want.nodes, "nodes {from:?}->{to:?}");
                    assert_eq!(
                        got.base_one_way_ms.to_bits(),
                        want.base_one_way_ms.to_bits(),
                        "floor {from:?}->{to:?}"
                    );
                    pairs += 1;
                }
                None => assert!(table.path(from, to).is_none(), "{from:?}->{to:?}"),
            }
        }
    }
    assert!(pairs > p.probes().len(), "table covered {pairs} pairs");
}

#[test]
fn route_table_build_is_thread_count_invariant() {
    let p = platform(9);
    let reference = p.route_table(2, 1, 1);
    for threads in [2usize, 5, 8] {
        assert_eq!(
            p.route_table(2, 1, threads),
            reference,
            "{threads}-thread build diverged"
        );
    }
}

/// The golden acceptance grid: ping and TCP campaigns, with and without
/// churn, sequential and at 1/2/8 worker threads, all produce the same
/// multiset of samples through the shared route table.
#[test]
fn campaign_is_bit_identical_across_kinds_churn_and_threads() {
    use latency_shears::atlas::MeasurementType;

    let p = platform(9);
    let sort_key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
    for kind in [MeasurementType::Ping, MeasurementType::TcpConnect] {
        for churn in [false, true] {
            let cfg = CampaignConfig {
                rounds: 3,
                targets_per_probe: 2,
                adjacent_targets: 1,
                kind,
                churn,
                ..CampaignConfig::quick()
            };
            let mut reference = Campaign::new(&p, cfg).run().unwrap().samples().to_vec();
            reference.sort_by_key(sort_key);
            assert!(!reference.is_empty(), "{kind:?} churn={churn}");
            for threads in [1usize, 2, 8] {
                let mut run = Campaign::new(&p, cfg)
                    .run_parallel(threads)
                    .unwrap()
                    .samples()
                    .to_vec();
                run.sort_by_key(sort_key);
                assert_eq!(run, reference, "{kind:?} churn={churn} threads={threads}");
            }
        }
    }
}

/// Chaos acceptance grid: under every fault profile, a campaign is a
/// pure function of its seed — run and run_parallel at 1/2/8 threads
/// produce the same multiset of samples, across a matrix of seeds wide
/// enough to hit cuts, bursts and blackouts in many phases.
#[test]
fn chaos_campaigns_are_bit_identical_across_seeds_profiles_and_threads() {
    let p = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 40,
            seed: 17,
        },
        ..PlatformConfig::default()
    });
    let sort_key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
    let mut faulty_profiles = 0usize;
    for profile in ["lossy", "blackout", "chaos"] {
        let faults = FaultConfig::profile(profile).expect("known profile");
        for seed in 1..=20u64 {
            let cfg = CampaignConfig {
                rounds: 2,
                targets_per_probe: 1,
                adjacent_targets: 1,
                seed,
                faults,
                recovery: RetryPolicy::atlas_default(),
                ..CampaignConfig::quick()
            };
            let campaign = Campaign::new(&p, cfg);
            let plan = campaign.fault_plan().expect("profiles enable faults");
            faulty_profiles += usize::from(!plan.is_empty());
            let mut reference = campaign.run().unwrap().samples().to_vec();
            reference.sort_by_key(sort_key);
            assert!(!reference.is_empty(), "{profile} seed {seed}");
            for threads in [1usize, 2, 8] {
                let mut run = Campaign::new(&p, cfg)
                    .run_parallel(threads)
                    .unwrap()
                    .samples()
                    .to_vec();
                run.sort_by_key(sort_key);
                assert_eq!(run, reference, "{profile} seed {seed} threads {threads}");
            }
        }
    }
    // The matrix must actually exercise faults, not 60 empty plans.
    assert!(faulty_profiles > 40, "{faulty_profiles} non-empty plans");
}

/// The no-fault equivalence pin: a passthrough plan (fault machinery
/// active, zero scheduled events) reproduces the default fault-free
/// campaign bit for bit — the guarantee that lets every pre-existing
/// golden test keep its expected values.
#[test]
fn passthrough_faults_reproduce_the_fault_free_campaign() {
    let p = platform(9);
    let base = CampaignConfig {
        rounds: 3,
        targets_per_probe: 2,
        adjacent_targets: 1,
        ..CampaignConfig::quick()
    };
    let clean = Campaign::new(&p, base).run().unwrap();
    let cfg = CampaignConfig {
        faults: FaultConfig::passthrough(),
        ..base
    };
    let campaign = Campaign::new(&p, cfg);
    let plan = campaign.fault_plan().expect("passthrough is enabled");
    assert!(plan.is_empty(), "passthrough schedules no events");
    let faulty = campaign.run().unwrap();
    assert_eq!(clean.samples(), faulty.samples());
}

/// Columnar acceptance: every `ResultStore` accessor — row views,
/// column slices, filters and aggregates — agrees with a plain
/// row-by-row pass over `samples()`. This is the contract that let the
/// store switch to struct-of-arrays without touching its callers.
#[test]
fn columnar_store_accessors_agree_with_the_row_view() {
    let p = platform(9);
    let mut store = campaign(&p, 1);
    // Force at least one lost round so the responded paths branch.
    store.push(RttSample {
        probe: ProbeId(3),
        region: 7,
        at: SimTime::from_hours(999),
        min_ms: f32::INFINITY,
        avg_ms: f32::INFINITY,
        sent: 3,
        received: 0,
    });
    let rows = store.samples();
    assert_eq!(rows.len(), store.len());

    // Row materialisation: get / iter / samples are the same view.
    for (i, s) in rows.iter().enumerate() {
        assert_eq!(store.get(i), *s);
        assert_eq!(store.responded_at(i), s.responded());
    }
    assert_eq!(store.iter().collect::<Vec<_>>(), rows);

    // Column slices are the transposed rows, floats bit for bit.
    for (i, s) in rows.iter().enumerate() {
        assert_eq!(store.probes()[i], s.probe);
        assert_eq!(store.regions()[i], s.region);
        assert_eq!(store.ats()[i], s.at);
        assert_eq!(store.min_ms()[i].to_bits(), s.min_ms.to_bits());
        assert_eq!(store.avg_ms()[i].to_bits(), s.avg_ms.to_bits());
        assert_eq!(store.sent()[i], s.sent);
        assert_eq!(store.received()[i], s.received);
    }

    // Filtered views against the naive row filters.
    let by_probe: Vec<RttSample> = store.by_probe(ProbeId(3)).collect();
    let by_probe_ref: Vec<RttSample> = rows
        .iter()
        .filter(|s| s.probe == ProbeId(3))
        .copied()
        .collect();
    assert_eq!(by_probe, by_probe_ref);
    let region = rows[0].region;
    let by_region: Vec<RttSample> = store.by_region(region).collect();
    let by_region_ref: Vec<RttSample> =
        rows.iter().filter(|s| s.region == region).copied().collect();
    assert_eq!(by_region, by_region_ref);
    let (from, to) = (SimTime::from_hours(1), SimTime::from_hours(10));
    let windowed: Vec<RttSample> = store.in_window(from, to).collect();
    let windowed_ref: Vec<RttSample> = rows
        .iter()
        .filter(|s| s.at >= from && s.at < to)
        .copied()
        .collect();
    assert_eq!(windowed, windowed_ref);
    let responded: Vec<RttSample> = store.responded().collect();
    let responded_ref: Vec<RttSample> =
        rows.iter().filter(|s| s.responded()).copied().collect();
    assert_eq!(responded, responded_ref);

    // Aggregates.
    assert_eq!(store.responded_len(), responded_ref.len());
    let rate_ref = responded_ref.len() as f64 / rows.len() as f64;
    assert!((store.response_rate() - rate_ref).abs() < f64::EPSILON);

    // Column-wise merge is row concatenation.
    let cut = rows.len() / 2;
    let mut left = ResultStore::with_capacity(cut);
    let mut right = ResultStore::new();
    for (i, s) in rows.iter().enumerate() {
        if i < cut {
            left.push(*s);
        } else {
            right.push(*s);
        }
    }
    assert!(left.is_prefix_of(&store));
    assert!(!store.is_prefix_of(&left));
    left.merge(right);
    assert_eq!(left.samples(), rows, "merge == concatenation");
    assert!(left.is_prefix_of(&store) && store.is_prefix_of(&left));
}

/// Public-surface equality of two frames over the same store: every
/// accessor the analysis layer consumes must agree, floats bit for bit.
fn assert_frames_agree(p: &Platform, store: &ResultStore, a: &CampaignFrame, b: &CampaignFrame) {
    assert_eq!(a.rows_indexed(), b.rows_indexed());
    assert_eq!(a.filtered_len(), b.filtered_len());
    assert_eq!(a.responded_len(), b.responded_len());
    assert_eq!(a.countries_measured(), b.countries_measured());
    for probe in p.probes() {
        assert_eq!(a.is_privileged(probe.id), b.is_privileged(probe.id));
        assert_eq!(
            a.probe_min(probe.id).map(f64::to_bits),
            b.probe_min(probe.id).map(f64::to_bits),
            "probe {:?} min",
            probe.id
        );
        assert_eq!(a.best_region(probe.id), b.best_region(probe.id));
        let ra: Vec<(u16, u64)> = a
            .region_minima(probe.id)
            .map(|(r, v)| (r, v.to_bits()))
            .collect();
        let rb: Vec<(u16, u64)> = b
            .region_minima(probe.id)
            .map(|(r, v)| (r, v.to_bits()))
            .collect();
        assert_eq!(ra, rb, "probe {:?} region minima", probe.id);
        let sa: Vec<RttSample> = a.by_probe(store, probe.id).collect();
        let sb: Vec<RttSample> = b.by_probe(store, probe.id).collect();
        assert_eq!(sa, sb, "probe {:?} partition", probe.id);
    }
    let ca: Vec<(&str, u64)> = a.country_minima().map(|(c, v)| (c, v.to_bits())).collect();
    let cb: Vec<(&str, u64)> = b.country_minima().map(|(c, v)| (c, v.to_bits())).collect();
    assert_eq!(ca, cb, "country minima");
    let xa: Vec<(ProbeId, u64)> = a
        .closest_dc(p, store)
        .map(|(pr, v)| (pr.id, v.to_bits()))
        .collect();
    let xb: Vec<(ProbeId, u64)> = b
        .closest_dc(p, store)
        .map(|(pr, v)| (pr.id, v.to_bits()))
        .collect();
    assert_eq!(xa, xb, "closest-DC rows");
    assert_eq!(a.time_span(store), b.time_span(store));
    if let Some((lo, hi)) = a.time_span(store) {
        let beyond = SimTime::from_hours(1_000_000);
        let wa: Vec<RttSample> = a.in_window(store, lo, beyond).collect();
        let wb: Vec<RttSample> = b.in_window(store, lo, beyond).collect();
        assert_eq!(wa, wb, "full-window time index");
        let ha: Vec<RttSample> = a.in_window(store, lo, hi).collect();
        let hb: Vec<RttSample> = b.in_window(store, lo, hi).collect();
        assert_eq!(ha, hb, "half-open window");
    }
}

/// Incremental acceptance: a frame grown round by round with `append`
/// is indistinguishable — on its whole public surface — from a frame
/// rebuilt from scratch at every step, sequentially and at 1/2/8
/// build threads, on clean and chaos-faulted campaigns alike.
#[test]
fn incremental_frame_append_matches_full_rebuild_across_threads_and_faults() {
    let p = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 60,
            seed: 17,
        },
        ..PlatformConfig::default()
    });
    for profile in [None, Some("chaos")] {
        let mut cfg = CampaignConfig {
            rounds: 4,
            targets_per_probe: 2,
            adjacent_targets: 1,
            seed: 5,
            ..CampaignConfig::quick()
        };
        if let Some(name) = profile {
            cfg.faults = FaultConfig::profile(name).expect("known profile");
            cfg.recovery = RetryPolicy::atlas_default();
        }
        let full = Campaign::new(&p, cfg).run().unwrap();
        assert!(!full.is_empty(), "{profile:?}");

        // Cut the store at round-time boundaries.
        let ats = full.ats();
        let mut cuts = vec![0usize];
        for i in 1..full.len() {
            if ats[i] != ats[i - 1] {
                cuts.push(i);
            }
        }
        cuts.push(full.len());
        assert!(cuts.len() >= 3, "{profile:?}: needs multiple rounds");

        let mut growing = ResultStore::with_capacity(full.len());
        for i in 0..cuts[1] {
            growing.push(full.get(i));
        }
        let mut incremental = CampaignFrame::build(&p, &growing);
        assert_eq!(incremental.appends(), 0);
        for (step, pair) in cuts.windows(2).skip(1).enumerate() {
            for i in pair[0]..pair[1] {
                growing.push(full.get(i));
            }
            incremental.append(&growing);
            assert_eq!(incremental.appends(), step as u64 + 1);
            assert_eq!(incremental.rows_indexed(), growing.len());
            let rebuilt = CampaignFrame::build(&p, &growing);
            assert_frames_agree(&p, &growing, &incremental, &rebuilt);
            for threads in [2usize, 8] {
                let threaded = CampaignFrame::build_with_threads(&p, &growing, threads);
                assert_frames_agree(&p, &growing, &threaded, &rebuilt);
            }
        }
    }
}

/// Asserts every column kernel agrees across its scalar, chunked and
/// (when the `simd` feature is on) vectorised variants — bit for bit —
/// on one store's real columns, and that the dispatched wrapper matches.
fn assert_kernel_variants_agree(p: &Platform, store: &ResultStore, what: &str) {
    let min_ms = store.min_ms();
    let received = store.received();
    let sent = store.sent();

    // A macro so every kernel is checked against the scalar reference
    // the same way; with `simd` off that arm compiles to nothing. The
    // `|k| expr` argument is evaluated once per variant with `k` bound
    // to that variant's module.
    macro_rules! pin {
        ($label:expr, $norm:expr, |$k:ident| $call:expr) => {{
            let norm = $norm;
            let reference = {
                use latency_shears::analysis::kernels::scalar as $k;
                norm($call)
            };
            {
                use latency_shears::analysis::kernels::chunked as $k;
                assert_eq!(norm($call), reference, "{what}: {} chunked", $label);
            }
            #[cfg(feature = "simd")]
            {
                use latency_shears::analysis::kernels::simd as $k;
                assert_eq!(norm($call), reference, "{what}: {} simd", $label);
            }
            {
                use latency_shears::analysis::kernels as $k;
                assert_eq!(norm($call), reference, "{what}: {} dispatch", $label);
            }
        }};
    }

    pin!(
        "min_argmin",
        |r: Option<(f32, u32)>| r.map(|(v, i)| (v.to_bits(), i)),
        |k| k::min_argmin(min_ms)
    );
    pin!("sum", f64::to_bits, |k| k::sum(min_ms));
    pin!("mean", |r: Option<f64>| r.map(f64::to_bits), |k| k::mean(min_ms));
    pin!("count_nonzero", |c: usize| c, |k| k::count_nonzero(received));
    pin!("sum_u8", |s: u64| s, |k| k::sum_u8(sent));
    let finite: Vec<f64> = min_ms
        .iter()
        .filter(|v| v.is_finite())
        .map(|&v| f64::from(v))
        .collect();
    let mid = kernels::median(&finite).unwrap_or(0.0);
    for threshold in [0.0, mid, mid * 2.0, f64::INFINITY] {
        pin!(format!("count_at_or_below({threshold})"), |c: usize| c, |k| {
            k::count_at_or_below(min_ms, threshold)
        });
    }
    for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
        pin!(
            format!("percentile({q})"),
            |r: Option<f64>| r.map(f64::to_bits),
            |k| k::percentile(&finite, q)
        );
    }

    // The grouped scan that frame build/append runs, under the real
    // privileged mask.
    let privileged: Vec<bool> = p.probes().iter().map(|pr| pr.is_privileged()).collect();
    let cols = ScanCols {
        probes: store.probes(),
        regions: store.regions(),
        min_ms,
        received,
    };
    pin!(
        "region_min_scan",
        |g: kernels::GroupedMinima| g,
        |k| k::region_min_scan(&cols, &privileged, 0, privileged.len())
    );

    // Windowed range queries over the (sorted, this store came straight
    // from a campaign) `at` column, pinned against the row filter.
    let ats = store.ats();
    if let Some((&lo, &hi)) = ats.first().zip(ats.last()) {
        let beyond = SimTime::from_nanos(hi.as_nanos() + 1);
        for (from, to) in [(lo, hi), (lo, lo), (hi, hi), (lo, beyond)] {
            pin!("range_partition", |r: RangeQuery| r, |k| {
                k::range_partition(ats, from, to)
            });
            if let RangeQuery::Slice(a, b) = kernels::range_partition(ats, from, to) {
                let expect: Vec<usize> = (0..ats.len())
                    .filter(|&i| ats[i] >= from && ats[i] < to)
                    .collect();
                assert_eq!((a..b).collect::<Vec<_>>(), expect, "{what}: slice [{a},{b})");
            }
        }
    }

    // Store-level consumers of the kernels stay consistent with the
    // naive row pass.
    let responded_ref = (0..store.len()).filter(|&i| received[i] != 0).count();
    assert_eq!(store.responded_len(), responded_ref, "{what}: responded_len");
    assert_eq!(
        kernels::count_nonzero(received),
        responded_ref,
        "{what}: count_nonzero vs rows"
    );
    if !finite.is_empty() {
        let e = Ecdf::new(finite.clone());
        for q in [0.1, 0.5, 0.75, 0.95] {
            assert_eq!(
                kernels::percentile(&finite, q).map(f64::to_bits),
                e.quantile(q).map(f64::to_bits),
                "{what}: percentile({q}) vs Ecdf"
            );
        }
    }
}

/// Kernel acceptance grid: over the same 20-seed × 3-profile chaos
/// campaigns the bit-identity grid runs, every scan variant produces
/// identical bits on the real columns — the contract that makes the
/// `simd` feature flag an observable no-op.
#[test]
fn kernel_variants_are_bit_identical_on_chaos_campaign_columns() {
    let p = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 40,
            seed: 17,
        },
        ..PlatformConfig::default()
    });
    for profile in ["lossy", "blackout", "chaos"] {
        let faults = FaultConfig::profile(profile).expect("known profile");
        for seed in 1..=20u64 {
            let cfg = CampaignConfig {
                rounds: 2,
                targets_per_probe: 1,
                adjacent_targets: 1,
                seed,
                faults,
                recovery: RetryPolicy::atlas_default(),
                ..CampaignConfig::quick()
            };
            let mut store = Campaign::new(&p, cfg).run().unwrap();
            assert!(!store.is_empty(), "{profile} seed {seed}");
            assert_kernel_variants_agree(&p, &store, &format!("{profile} seed {seed}"));
            // Append an adversarial coda — lost rounds, duplicate minima
            // and an out-of-order timestamp — so the masked paths and the
            // Filter fallback run on campaign-derived data too.
            let first = store.get(0);
            store.push(RttSample {
                min_ms: f32::INFINITY,
                avg_ms: f32::INFINITY,
                received: 0,
                ..first
            });
            store.push(first);
            store.push(RttSample {
                at: SimTime::ZERO,
                ..first
            });
            assert_kernel_variants_agree(&p, &store, &format!("{profile} seed {seed} +coda"));
        }
    }
}

#[test]
fn parallel_execution_is_seed_stable_across_thread_counts() {
    let p = platform(9);
    let cfg = CampaignConfig {
        rounds: 3,
        targets_per_probe: 2,
        adjacent_targets: 1,
        ..CampaignConfig::quick()
    };
    let sort_key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
    let mut runs: Vec<Vec<RttSample>> = [1usize, 2, 5, 8]
        .iter()
        .map(|&t| {
            let mut v = Campaign::new(&p, cfg)
                .run_parallel(t)
                .unwrap()
                .samples()
                .to_vec();
            v.sort_by_key(sort_key);
            v
        })
        .collect();
    let reference = runs.remove(0);
    for run in runs {
        assert_eq!(run, reference);
    }
}
