//! Determinism guarantees: the whole reproduction is a pure function of
//! its seeds — the property that makes EXPERIMENTS.md reproducible.

use latency_shears::prelude::*;

fn platform(seed: u64) -> Platform {
    Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 150,
            seed,
        },
        ..PlatformConfig::default()
    })
}

fn campaign(platform: &Platform, seed: u64) -> ResultStore {
    Campaign::new(
        platform,
        CampaignConfig {
            rounds: 4,
            targets_per_probe: 2,
            adjacent_targets: 1,
            seed,
            ..CampaignConfig::quick()
        },
    )
    .run()
    .unwrap()
}

#[test]
fn identical_seeds_produce_identical_worlds_and_samples() {
    let p1 = platform(9);
    let p2 = platform(9);
    assert_eq!(p1.topology().node_count(), p2.topology().node_count());
    assert_eq!(p1.topology().link_count(), p2.topology().link_count());
    let s1 = campaign(&p1, 1);
    let s2 = campaign(&p2, 1);
    assert_eq!(s1.samples(), s2.samples());
}

#[test]
fn campaign_seed_changes_samples_but_not_schedule() {
    let p = platform(9);
    let a = campaign(&p, 1);
    let b = campaign(&p, 2);
    // Values differ…
    assert_ne!(a.samples(), b.samples());
    // …but the deterministic structure matches where both probes were
    // online: any (probe, region, at) key in both stores appears once.
    use std::collections::HashSet;
    let keys = |s: &ResultStore| -> HashSet<(ProbeId, u16, u64)> {
        s.samples()
            .iter()
            .map(|x| (x.probe, x.region, x.at.as_nanos()))
            .collect()
    };
    let ka = keys(&a);
    let kb = keys(&b);
    assert_eq!(ka.len(), a.len(), "no duplicate keys");
    // Online-ness is seed-dependent, but the shared subset is large.
    assert!(ka.intersection(&kb).count() > ka.len() / 2);
}

#[test]
fn fleet_seed_changes_probe_placement() {
    let p1 = platform(9);
    let p2 = platform(10);
    let moved = p1
        .probes()
        .iter()
        .zip(p2.probes())
        .filter(|(a, b)| a.location != b.location)
        .count();
    assert!(moved > p1.probes().len() / 2);
}

#[test]
fn parallel_execution_is_seed_stable_across_thread_counts() {
    let p = platform(9);
    let cfg = CampaignConfig {
        rounds: 3,
        targets_per_probe: 2,
        adjacent_targets: 1,
        ..CampaignConfig::quick()
    };
    let sort_key = |s: &RttSample| (s.probe, s.region, s.at.as_nanos());
    let mut runs: Vec<Vec<RttSample>> = [1usize, 2, 5, 8]
        .iter()
        .map(|&t| {
            let mut v = Campaign::new(&p, cfg)
                .run_parallel(t)
                .unwrap()
                .samples()
                .to_vec();
            v.sort_by_key(sort_key);
            v
        })
        .collect();
    let reference = runs.remove(0);
    for run in runs {
        assert_eq!(run, reference);
    }
}
