//! The adversarial connection-level battery for the readiness-driven
//! reactor (`scripts/verify.sh reactor`).
//!
//! Every scenario here is a client misbehaving at the *transport*
//! level — the layer the reactor owns — and each is pinned at 1, 2,
//! and 8 reactor threads so no pass depends on an accidental
//! single-threaded serialisation:
//!
//! * **slowloris** — a client dribbling header bytes one at a time
//!   (100 ms apart) holds only its own slab slot; concurrent fast
//!   sessions complete a full request burst while the dribble is still
//!   in progress,
//! * **split-at-every-boundary** — a pipelined keep-alive request pair
//!   delivered with a flush+pause at *every* byte boundary produces
//!   responses byte-identical to the one-shot delivery (the
//!   incremental parser holds verdict equality on the wire, not just
//!   in unit tests),
//! * **mid-response disconnect** — clients that vanish after reading
//!   one response byte never take a reactor or compute thread with
//!   them (pinned via the server's own `threads_live` counter),
//! * **slow reader** — a client draining a 32 MiB response one byte
//!   per 100 ms parks the connection in `WritingResponse`, where the
//!   idle wheel cannot see it; the write deadline reaps it (pinned via
//!   `write_deadline_closed`) while fast sessions stay unaffected,
//! * **overload shed + drain** — with a single-slot compute queue, a
//!   full queue answers 503 on the same connection immediately, and
//!   the *same* connection serves 200 again once the queue drains,
//! * **idle soak** — `SHEARS_SOAK_SESSIONS` (default 2000, set 10000
//!   where the fd limit allows) idle keep-alive sessions hold
//!   steady-state threads at exactly reactors + compute pool, and the
//!   fleet still serves afterwards,
//! * **engine equality** — the reactor and the PR-5-era worker-pool
//!   shim answer an identical request sequence with bit-identical
//!   bytes.
//!
//! Everything asserts on status lines and raw bytes — not JSON bodies
//! — so the battery is identical under the offline serde stub.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use latency_shears::api::dto::CreateMeasurementDto;
use latency_shears::api::server::{ApiServer, ServerConfig};
use latency_shears::api::AtlasService;
use latency_shears::prelude::*;

const REACTOR_COUNTS: [usize; 3] = [1, 2, 8];

fn service() -> AtlasService {
    let platform = Platform::build(&PlatformConfig::quick(4));
    let service = AtlasService::new(platform).with_debug_routes();
    // Seed one measurement through the service (not JSON) so read
    // endpoints have something deterministic to serve.
    let created = service.create_from_spec(&CreateMeasurementDto {
        target_region: 0,
        packets: 2,
        rounds: 1,
        probe_limit: 4,
        country: None,
        fault_profile: None,
        retries: None,
        durability: false,
    });
    assert_eq!(created.status, 201);
    service
}

fn spawn(reactors: usize, compute: usize, queue: usize) -> ApiServer {
    ApiServer::spawn_with(
        "127.0.0.1:0",
        service(),
        ServerConfig::reactor(reactors, compute, queue),
    )
    .unwrap()
}

/// One `Connection: close` request, full response bytes.
fn oneshot(addr: SocketAddr, raw: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).unwrap();
    let mut out = Vec::new();
    s.read_to_string_lossy(&mut out);
    out
}

/// `read_to_end` that tolerates the peer resetting after close.
trait ReadAllLossy {
    fn read_to_string_lossy(&mut self, out: &mut Vec<u8>);
}
impl ReadAllLossy for TcpStream {
    fn read_to_string_lossy(&mut self, out: &mut Vec<u8>) {
        let mut buf = [0u8; 4096];
        loop {
            match self.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => out.extend_from_slice(&buf[..n]),
            }
        }
    }
}

const FAST_REQ: &[u8] = b"GET /api/v2/credits HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n";

#[test]
fn slowloris_does_not_starve_fast_sessions() {
    for reactors in REACTOR_COUNTS {
        let server = spawn(reactors, 2, 16);
        let addr = server.local_addr();

        // The slow client: request line sent whole, then the header
        // tail dribbled 1 byte / 100 ms — mid-request the whole time
        // the fast burst below runs.
        let dribble = b"host: t\r\nConnection: close\r\n\r\n";
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        slow.write_all(b"GET /api/v2/credits HTTP/1.1\r\n").unwrap();
        let dribbler = std::thread::spawn(move || {
            for &b in dribble {
                std::thread::sleep(Duration::from_millis(100));
                if slow.write_all(&[b]).is_err() {
                    panic!("slowloris connection was torn down mid-dribble");
                }
            }
            let mut out = Vec::new();
            slow.read_to_string_lossy(&mut out);
            out
        });

        // The fast burst: 25 sequential close-per-request round trips
        // must all complete while the dribble (~3 s) is still going.
        let burst_started = Instant::now();
        for i in 0..25 {
            let resp = oneshot(addr, FAST_REQ);
            assert!(
                resp.starts_with(b"HTTP/1.1 200"),
                "fast request {i} starved at {reactors} reactors: {:?}",
                String::from_utf8_lossy(&resp[..resp.len().min(40)])
            );
        }
        let burst = burst_started.elapsed();
        assert!(
            burst < Duration::from_millis(u64::try_from(dribble.len()).unwrap() * 100),
            "burst took {burst:?} — slower than the slowloris itself at {reactors} reactors"
        );

        // And the slow client still gets its answer: slow ≠ dead.
        let slow_resp = dribbler.join().unwrap();
        assert!(
            slow_resp.starts_with(b"HTTP/1.1 200"),
            "slowloris request was dropped at {reactors} reactors"
        );
        server.shutdown().unwrap();
    }
}

#[test]
fn pipelined_pair_split_at_every_boundary_matches_oneshot() {
    // A keep-alive request pipelined ahead of a closing one: both
    // responses arrive on one connection, then it closes — so a single
    // read-to-EOF captures the full double response.
    let pair: &[u8] = b"GET /api/v2/credits HTTP/1.1\r\nhost: t\r\n\r\nGET /api/v2/regions HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n";
    for reactors in REACTOR_COUNTS {
        let server = spawn(reactors, 2, 16);
        let addr = server.local_addr();
        let reference = oneshot(addr, pair);
        assert!(reference.starts_with(b"HTTP/1.1 200"), "reference broken");
        // Both responses present in the reference capture.
        assert_eq!(
            count_occurrences(&reference, b"HTTP/1.1 200"),
            2,
            "reference must hold both pipelined responses"
        );
        for split in 1..pair.len() {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.set_nodelay(true).unwrap();
            s.write_all(&pair[..split]).unwrap();
            // Give the reactor a beat to observe the partial prefix.
            std::thread::sleep(Duration::from_millis(1));
            s.write_all(&pair[split..]).unwrap();
            let mut got = Vec::new();
            s.read_to_string_lossy(&mut got);
            assert_eq!(
                got,
                reference,
                "split at byte {split} diverged from one-shot at {reactors} reactors"
            );
        }
        server.shutdown().unwrap();
    }
}

fn count_occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    haystack
        .windows(needle.len())
        .filter(|w| *w == needle)
        .count()
}

#[test]
fn mid_response_disconnect_never_kills_the_reactor() {
    for reactors in REACTOR_COUNTS {
        let compute = 2;
        let server = spawn(reactors, compute, 16);
        let addr = server.local_addr();
        for _ in 0..20 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            // A response large enough that the write outlives our
            // read, then vanish after the first byte.
            s.write_all(b"GET /api/v2/probes?limit=500 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut one = [0u8; 1];
            let _ = s.read(&mut one);
            // Drop mid-response: the server's remaining write hits a
            // dead peer.
            drop(s);
        }
        // The server is unfazed: full thread complement, still serves.
        let resp = oneshot(addr, FAST_REQ);
        assert!(
            resp.starts_with(b"HTTP/1.1 200"),
            "server dead after disconnects at {reactors} reactors"
        );
        let snap = server.metrics();
        assert_eq!(
            snap.threads_live,
            (reactors + compute) as u64,
            "a disconnect took a thread with it at {reactors} reactors"
        );
        server.shutdown().unwrap();
    }
}

#[test]
fn slow_readers_hit_the_write_deadline_without_starving_fast_sessions() {
    for reactors in [1usize, 2] {
        let server = ApiServer::spawn_with(
            "127.0.0.1:0",
            service(),
            ServerConfig::reactor(reactors, 2, 16)
                .with_write_timeout(Duration::from_millis(400)),
        )
        .unwrap();
        let addr = server.local_addr();

        // The slow reader: asks for far more than any kernel socket
        // buffering will absorb, then drains one byte per 100 ms. The
        // server's write stalls in `WritingResponse` — a state the
        // idle wheel never reaps, which is exactly why in-flight
        // writes carry their own deadline.
        let mut slow = TcpStream::connect(addr).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        slow.write_all(
            b"GET /api/v2/__debug/blob?bytes=33554432 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let reader = std::thread::spawn(move || {
            // Dribble for ~2.5 s, far past the 400 ms write deadline.
            // (EOF is not observable from here: the client-side kernel
            // buffer keeps serving bytes long after the server closes,
            // so the pin below reads the server's own counter instead.)
            let mut one = [0u8; 1];
            for _ in 0..25 {
                if matches!(slow.read(&mut one), Ok(0) | Err(_)) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });

        // While the slow reader stalls its connection, fast sessions
        // are untouched.
        for i in 0..10 {
            let resp = oneshot(addr, FAST_REQ);
            assert!(
                resp.starts_with(b"HTTP/1.1 200"),
                "fast request {i} starved by a slow reader at {reactors} reactors"
            );
        }

        // The server reaps the stalled write within its deadline (plus
        // sweep slack), and says so on its own counter.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if server.metrics().write_deadline_closed >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "write deadline never fired at {reactors} reactors: {:?}",
                server.metrics()
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        reader.join().unwrap();
        server.shutdown().unwrap();
    }
}

#[test]
fn overload_sheds_503_and_recovers_after_drain() {
    for reactors in REACTOR_COUNTS {
        // One compute thread, one queue slot: trivially saturated.
        let server = spawn(reactors, 1, 1);
        let addr = server.local_addr();
        let sleep_req: &[u8] =
            b"GET /api/v2/__debug/sleep?ms=600 HTTP/1.1\r\nhost: t\r\n\r\n";
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        busy.write_all(sleep_req).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        queued.write_all(sleep_req).unwrap();
        std::thread::sleep(Duration::from_millis(150));

        // Queue full: an immediate 503 on a live connection...
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        shed.write_all(b"GET /api/v2/credits HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let t0 = Instant::now();
        let mut head = [0u8; 12];
        shed.read_exact(&mut head).unwrap();
        assert_eq!(
            &head, b"HTTP/1.1 503",
            "expected immediate shed at {reactors} reactors"
        );
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "503 was not immediate at {reactors} reactors"
        );
        assert!(server.metrics().responses_503 >= 1);
        // ... drain the rest of the 503 head+body from the socket.
        drain_one_response(&mut shed);

        // After the queue drains, the same connection serves again.
        std::thread::sleep(Duration::from_millis(1_500));
        shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        shed.write_all(FAST_REQ).unwrap();
        let mut resp = Vec::new();
        shed.read_to_string_lossy(&mut resp);
        assert!(
            resp.starts_with(b"HTTP/1.1 200"),
            "no recovery after drain at {reactors} reactors: {:?}",
            String::from_utf8_lossy(&resp[..resp.len().min(40)])
        );
        server.shutdown().unwrap();
    }
}

/// Reads one HTTP response (head + declared body) off a keep-alive
/// stream, leaving it positioned at the next response.
fn drain_one_response(s: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut b = [0u8; 512];
    let mut need = None;
    loop {
        if need.is_none() {
            if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..end]);
                let cl = head
                    .lines()
                    .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(|v| v.trim().parse::<usize>().unwrap()));
                need = Some(end + 4 + cl.unwrap_or(0));
            }
        }
        if let Some(n) = need {
            if buf.len() >= n {
                return;
            }
        }
        let n = s.read(&mut b).unwrap();
        assert!(n > 0, "peer closed while draining a response");
        buf.extend_from_slice(&b[..n]);
    }
}

#[test]
fn idle_soak_holds_thread_count_at_reactors_plus_pool() {
    // In-process soak: client and server ends share this process's fd
    // budget, so the default is 2000 sessions (≈4000 fds). Set
    // SHEARS_SOAK_SESSIONS=10000 to run the acceptance-scale soak
    // where `ulimit -n` admits ≥20k fds.
    let sessions: usize = std::env::var("SHEARS_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let (reactors, compute) = (2usize, 4usize);
    let server = ApiServer::spawn_with(
        "127.0.0.1:0",
        service(),
        ServerConfig::reactor(reactors, compute, 64)
            .with_idle_timeout(Duration::from_secs(120))
            .with_max_connections(sessions + 64),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut fleet = Vec::with_capacity(sessions);
    for i in 0..sessions {
        match TcpStream::connect(addr) {
            Ok(s) => fleet.push(s),
            Err(e) => panic!("fd budget exhausted at session {i}: {e} (lower SHEARS_SOAK_SESSIONS)"),
        }
    }
    // Wait until the reactor has adopted the whole fleet.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let open = server.metrics().connections_open;
        if open >= sessions as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {open}/{sessions} sessions adopted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Let the fleet sit idle, then read the pin off the server's own
    // counters: idle sessions must cost slab slots, not threads.
    std::thread::sleep(Duration::from_millis(300));
    let snap = server.metrics();
    assert_eq!(
        snap.threads_live,
        (reactors + compute) as u64,
        "idle sessions grew the thread count"
    );
    assert_eq!(snap.connections_open, sessions as u64);

    // The fleet is not just parked — sampled sessions still serve.
    for i in (0..sessions).step_by((sessions / 16).max(1)) {
        let s = &mut fleet[i];
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /api/v2/credits HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let mut head = [0u8; 12];
        s.read_exact(&mut head).unwrap();
        assert_eq!(&head, b"HTTP/1.1 200", "session {i} dead after soak");
        drain_rest_of_response(s, &head);
    }
    drop(fleet);
    server.shutdown().unwrap();
}

/// Finishes reading the response whose first 12 bytes are `head`.
fn drain_rest_of_response(s: &mut TcpStream, head: &[u8; 12]) {
    let mut buf = head.to_vec();
    let mut b = [0u8; 512];
    loop {
        if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let text = String::from_utf8_lossy(&buf[..end]);
            let cl: usize = text
                .lines()
                .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(|v| v.trim().parse().unwrap()))
                .unwrap_or(0);
            if buf.len() >= end + 4 + cl {
                return;
            }
        }
        let n = s.read(&mut b).unwrap();
        assert!(n > 0);
        buf.extend_from_slice(&b[..n]);
    }
}

#[test]
fn reactor_and_worker_pool_answer_bit_identical_bytes() {
    // The PR-5 baseline lives on as the worker-pool shim; the reactor
    // must be indistinguishable on the wire across the whole route
    // surface, including error paths.
    let reactor = ApiServer::spawn_with(
        "127.0.0.1:0",
        service(),
        ServerConfig::reactor(2, 2, 16),
    )
    .unwrap();
    let pool = ApiServer::spawn_with(
        "127.0.0.1:0",
        service(),
        ServerConfig::worker_pool(4, 16),
    )
    .unwrap();
    let requests: &[&[u8]] = &[
        FAST_REQ,
        b"GET /api/v2/regions HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"GET /api/v2/probes?limit=5 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"GET /api/v2/measurements HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"GET /api/v2/measurements/1 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"GET /api/v2/measurements/1/results HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"GET /api/v2/measurements/1/stats HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"GET /api/v2/measurements/999 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"PATCH /api/v2/credits HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        // Hostile percent-escape in the path (valid UTF-8 on the wire).
        "GET /api/v2/%中 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n".as_bytes(),
        // Raw non-UTF-8 bytes in the request line: both fronts mirror
        // `read_line` and close without a response — still compared.
        b"GET /%\xe4%b8 HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
        b"NOTHTTP\r\n\r\n",
        b"GET / HTTP/2\r\n\r\n",
    ];
    for raw in requests {
        let a = oneshot(reactor.local_addr(), raw);
        let b = oneshot(pool.local_addr(), raw);
        assert_eq!(
            a,
            b,
            "engines diverged on {:?}",
            String::from_utf8_lossy(&raw[..raw.len().min(40)])
        );
        let utf8 = std::str::from_utf8(raw).is_ok();
        assert!(
            !utf8 || !a.is_empty(),
            "empty response for {:?}",
            String::from_utf8_lossy(&raw[..raw.len().min(40)])
        );
    }
    reactor.shutdown().unwrap();
    pool.shutdown().unwrap();
}
