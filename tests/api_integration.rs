//! API integration: the HTTP surface must agree with direct platform
//! queries, under concurrency, over real sockets.

use latency_shears::api::dto::CreateMeasurementDto;
use latency_shears::api::{ApiClient, ApiServer, AtlasService};
use latency_shears::prelude::*;

fn spawn() -> (ApiServer, usize, usize) {
    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 250,
            seed: 77,
        },
        ..PlatformConfig::default()
    });
    let probes = platform.probes().len();
    let regions = platform.catalog().regions().len();
    let server = ApiServer::spawn("127.0.0.1:0", AtlasService::new(platform)).unwrap();
    (server, probes, regions)
}

#[test]
fn api_inventory_matches_platform() {
    let (server, probes, regions) = spawn();
    let client = ApiClient::new(server.local_addr());
    assert_eq!(client.list_regions().unwrap().len(), regions);
    // Paginated listing converges on the full fleet.
    let mut seen = 0;
    let mut offset = 0;
    loop {
        let (status, body) = client
            .request(
                "GET",
                &format!("/api/v2/probes?limit=100&offset={offset}"),
                None,
            )
            .unwrap();
        assert_eq!(status, 200);
        let page: Vec<serde_json::Value> = serde_json::from_slice(&body).unwrap();
        if page.is_empty() {
            break;
        }
        seen += page.len();
        offset += 100;
    }
    assert_eq!(seen, probes);
    server.shutdown().unwrap();
}

#[test]
fn measurement_results_reflect_geography() {
    let (server, _, _) = spawn();
    let client = ApiClient::new(server.local_addr());
    let regions = client.list_regions().unwrap();
    let frankfurt = regions
        .iter()
        .find(|r| r.city == "Frankfurt")
        .expect("Frankfurt region");
    let sydney = regions
        .iter()
        .find(|r| r.city == "Sydney")
        .expect("Sydney region");

    let median = |target: usize| -> f64 {
        let m = client
            .create_measurement(&CreateMeasurementDto {
                target_region: target,
                packets: 3,
                rounds: 2,
                probe_limit: 30,
                country: Some("DE".into()),
                fault_profile: None,
                retries: None,
                durability: true,
            })
            .unwrap();
        let mut rtts: Vec<f64> = client
            .results(m.id)
            .unwrap()
            .iter()
            .filter_map(|r| r.min_ms)
            .collect();
        assert!(!rtts.is_empty());
        rtts.sort_by(f64::total_cmp);
        rtts[rtts.len() / 2]
    };

    let to_frankfurt = median(frankfurt.index);
    let to_sydney = median(sydney.index);
    assert!(
        to_sydney > 3.0 * to_frankfurt,
        "German probes: Sydney {to_sydney} ms should dwarf Frankfurt {to_frankfurt} ms"
    );
    server.shutdown().unwrap();
}

#[test]
fn concurrent_measurements_keep_credit_accounting_consistent() {
    let (server, _, _) = spawn();
    let addr = server.local_addr();
    let before = ApiClient::new(addr).credits().unwrap();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let client = ApiClient::new(addr);
                client
                    .create_measurement(&CreateMeasurementDto {
                        target_region: i,
                        packets: 3,
                        rounds: 1,
                        probe_limit: 10,
                        country: None,
                        fault_profile: None,
                        retries: None,
                        durability: true,
                    })
                    .unwrap()
                    .credits_spent
            })
        })
        .collect();
    let spent: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let after = ApiClient::new(addr).credits().unwrap();
    assert_eq!(before - after, spent);
    server.shutdown().unwrap();
}

#[test]
fn api_rejects_garbage_without_dying() {
    let (server, _, _) = spawn();
    let client = ApiClient::new(server.local_addr());
    let (status, _) = client
        .request("POST", "/api/v2/measurements", Some(b"{{{{"))
        .unwrap();
    assert_eq!(status, 400);
    // The server survives and keeps serving.
    assert_eq!(client.list_regions().unwrap().len(), 101);
    server.shutdown().unwrap();
}
