//! Kill-at-any-round recovery harness.
//!
//! The durability contract (DESIGN.md §7d): a campaign killed after any
//! durable round and resumed from its journal must produce a
//! `ResultStore` bit-identical to an uninterrupted run and a conserved
//! credit ledger — for every seed, kill point, worker count and fault
//! profile. These sweeps pin that contract:
//!
//! * 10 seeds × 3 kill rounds × threads {1, 2, 8} × fault profiles
//!   {none, chaos}, each crash + resume diffed bit-for-bit against the
//!   clean run (and, fault-free, against the plain sequential
//!   [`Campaign::run`]);
//! * byte-level damage — truncation at arbitrary offsets, single bit
//!   flips — must surface as typed [`JournalError`]s or a safely
//!   discarded torn tail, never a panic and never silently wrong data.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use latency_shears::atlas::journal::{self, JournalError};
use latency_shears::atlas::CreditLedger;
use latency_shears::prelude::*;

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];
const KILL_ROUNDS: [u32; 3] = [0, 1, 2];
const THREADS: [usize; 3] = [1, 2, 8];
const ROUNDS: u32 = 4;
const CREDITS: u64 = 50_000_000;

fn tiny_platform(seed: u64) -> Platform {
    Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 30,
            seed,
        },
        ..PlatformConfig::default()
    })
}

fn sweep_cfg(seed: u64, chaos: bool) -> CampaignConfig {
    CampaignConfig {
        rounds: ROUNDS,
        targets_per_probe: 1,
        adjacent_targets: 1,
        seed,
        credits: CREDITS,
        faults: if chaos {
            FaultConfig::chaos()
        } else {
            FaultConfig::none()
        },
        ..CampaignConfig::quick()
    }
}

fn tmp_journal(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "shears-crash-recovery-{}-{}-{}.wal",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed),
    ))
}

fn assert_ledgers_match(clean: &CreditLedger, resumed: &CreditLedger, what: &str) {
    assert_eq!(clean.balance(), resumed.balance(), "balance drift: {what}");
    assert_eq!(clean.spent(), resumed.spent(), "spend drift: {what}");
    assert_eq!(clean.refunded(), resumed.refunded(), "refund drift: {what}");
    assert_eq!(
        resumed.balance() + resumed.spent(),
        CREDITS,
        "credits not conserved: {what}"
    );
}

/// The full sweep for one fault profile. For each seed the clean
/// reference runs once (durable, single-threaded — durable stores are
/// thread-count invariant, which `kill_sweep` re-checks via the crashed
/// runs at 1/2/8 workers).
fn kill_sweep(chaos: bool) {
    for seed in SEEDS {
        let platform = tiny_platform(seed);
        let cfg = sweep_cfg(seed, chaos);

        let clean_path = tmp_journal("clean");
        let clean = Campaign::new(&platform, cfg)
            .run_durable(1, &DurabilityConfig::new(&clean_path))
            .expect("clean durable run");
        std::fs::remove_file(&clean_path).unwrap();

        if !chaos {
            // Fault-free, the durable barrier loop must agree with the
            // plain sequential campaign bit-for-bit.
            let plain = Campaign::new(&platform, cfg).run().expect("plain run");
            assert_eq!(
                plain.samples(),
                clean.store.samples(),
                "durable vs plain divergence at seed {seed}"
            );
        }

        for kill in KILL_ROUNDS {
            for threads in THREADS {
                let what = format!(
                    "seed {seed} kill {kill} threads {threads} chaos {chaos}"
                );
                let path = tmp_journal("kill");
                let crashing = DurabilityConfig {
                    crash_after_round: Some(kill),
                    ..DurabilityConfig::new(&path)
                };
                let err = Campaign::new(&platform, cfg)
                    .run_durable(threads, &crashing)
                    .expect_err("simulated crash must surface");
                assert!(
                    matches!(err, CampaignError::SimulatedCrash { round } if round == kill),
                    "{what}: unexpected error {err}"
                );

                // The journal holds exactly the killed prefix, intact.
                let replay = journal::replay(&path).expect("journal replays");
                assert!(!replay.complete(), "{what}: dead campaign looks complete");
                assert!(!replay.torn_tail, "{what}: clean kill left a torn tail");
                assert_eq!(replay.next_round, kill + 1, "{what}");
                let prefix = replay.store.samples();
                assert_eq!(
                    prefix,
                    &clean.store.samples()[..prefix.len()],
                    "{what}: journaled prefix diverges from the clean run"
                );

                // Resume finishes the run bit-identically.
                let resumed = Campaign::resume(&platform, &DurabilityConfig::new(&path), threads)
                    .expect("resume");
                assert_eq!(
                    clean.store.samples(),
                    resumed.store.samples(),
                    "{what}: resumed store diverges"
                );
                assert_ledgers_match(&clean.ledger, &resumed.ledger, &what);

                // The finished journal replays complete and idempotent:
                // a second resume re-runs nothing and returns the same
                // state.
                let again = Campaign::resume(&platform, &DurabilityConfig::new(&path), threads)
                    .expect("second resume");
                assert_eq!(resumed.store.samples(), again.store.samples(), "{what}");
                assert_ledgers_match(&resumed.ledger, &again.ledger, &what);

                std::fs::remove_file(&path).unwrap();
            }
        }
    }
}

#[test]
fn kill_at_any_round_recovers_bit_identically_fault_free() {
    kill_sweep(false);
}

#[test]
fn kill_at_any_round_recovers_bit_identically_under_chaos() {
    kill_sweep(true);
}

/// Byte-level damage never panics and never fabricates data: every
/// truncation either replays a valid shorter prefix or fails typed, and
/// every bit flip is caught by the frame checksum (or safely discarded
/// as a torn tail when it corrupts a trailing length prefix).
#[test]
fn damaged_journals_fail_typed_never_panic() {
    let platform = tiny_platform(7);
    let cfg = sweep_cfg(7, true);
    let path = tmp_journal("damage");
    let clean = Campaign::new(&platform, cfg)
        .run_durable(2, &DurabilityConfig::new(&path))
        .expect("durable run");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let scratch = tmp_journal("damage-scratch");

    // Truncate at a spread of offsets covering prologue, header, and
    // round frames.
    for cut in (0..bytes.len()).step_by(37).chain([bytes.len() - 1]) {
        std::fs::write(&scratch, &bytes[..cut]).unwrap();
        match journal::replay(&scratch) {
            Ok(replay) => {
                // A replayable prefix must be a true prefix of the run.
                let prefix = replay.store.samples();
                assert_eq!(
                    prefix,
                    &clean.store.samples()[..prefix.len()],
                    "truncation at {cut} fabricated samples"
                );
                assert!(replay.valid_len <= cut as u64);
            }
            Err(
                JournalError::Truncated { .. }
                | JournalError::MissingHeader
                | JournalError::BadMagic,
            ) => {}
            Err(other) => panic!("truncation at {cut}: unexpected error {other}"),
        }
    }

    // Flip one bit at a spread of positions; CRCs (or prologue checks)
    // must catch every flip that survives parsing.
    for pos in (0..bytes.len()).step_by(53) {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x10;
        std::fs::write(&scratch, &damaged).unwrap();
        match journal::replay(&scratch) {
            Ok(replay) => {
                // Only a flip in a trailing length prefix may survive —
                // as a discarded torn tail, with the data prefix intact.
                assert!(replay.torn_tail, "flip at {pos} silently accepted");
                let prefix = replay.store.samples();
                assert_eq!(
                    prefix,
                    &clean.store.samples()[..prefix.len()],
                    "flip at {pos} fabricated samples"
                );
            }
            Err(_) => {} // typed rejection is the expected outcome
        }
    }
    std::fs::remove_file(&scratch).unwrap();
}
