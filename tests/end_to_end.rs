//! End-to-end integration: platform → campaign → every analysis stage,
//! exercising the crates together exactly as the figure binaries do.

use latency_shears::analysis::distribution::all_samples_cdfs;
use latency_shears::analysis::edgegain::edge_gain_study;
use latency_shears::analysis::headline::headline_numbers;
use latency_shears::analysis::lastmile::last_mile_report;
use latency_shears::analysis::proximity::{country_min_report, probe_min_cdfs};
use latency_shears::apps::catalog::driving_applications;
use latency_shears::prelude::*;
use latency_shears::trends::{detect_eras, TrendDataset};

fn build() -> (Platform, ResultStore) {
    let platform = Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: 500,
            seed: 2024,
        },
        ..PlatformConfig::default()
    });
    let store = Campaign::new(
        &platform,
        CampaignConfig {
            rounds: 8,
            targets_per_probe: 3,
            adjacent_targets: 2,
            ..CampaignConfig::quick()
        },
    )
    .run_parallel(4)
    .expect("unlimited credits");
    (platform, store)
}

#[test]
fn full_pipeline_produces_consistent_figures() {
    let (platform, store) = build();
    let data = CampaignData::new(&platform, &store);

    // FIG4 and FIG5 must agree: a country's minimum equals the minimum
    // over its probes' minima.
    let fig4 = country_min_report(&data);
    let per_probe = data.per_probe_min();
    for (id, v) in &per_probe {
        let cc = platform.probes()[id.index()].country.as_str();
        assert!(
            fig4.min_by_country[cc] <= *v + 1e-9,
            "{cc}: country min above probe min"
        );
    }

    // FIG5 and FIG6: full distributions stochastically dominate minima.
    let fig5 = probe_min_cdfs(&data);
    let fig6 = all_samples_cdfs(&data);
    for c in Continent::ALL {
        let m5 = fig5.continent(c).and_then(Ecdf::median);
        let m6 = fig6.continent(c).and_then(Ecdf::median);
        if let (Some(a), Some(b)) = (m5, m6) {
            assert!(b >= a, "{c}: all-samples median {b} < minima median {a}");
        }
    }

    // FIG7 feeds FIG8: the measured zone must be usable by the app model.
    let fig7 = last_mile_report(&data, SimTime::from_hours(6)).expect("tag sets populated");
    assert!(fig7.ratio > 1.0);
    let headline = headline_numbers(&data);
    let apps = driving_applications();
    let verdicts: Vec<_> = apps
        .iter()
        .map(|a| headline.feasibility_zone.classify(a))
        .collect();
    assert!(verdicts.iter().any(|v| v.in_zone()), "FZ must be non-empty");
    assert!(
        verdicts.iter().any(|v| !v.in_zone()),
        "FZ must exclude something"
    );
}

#[test]
fn privileged_probes_never_reach_any_figure() {
    let (platform, store) = build();
    let data = CampaignData::new(&platform, &store);
    let privileged: Vec<ProbeId> = platform
        .probes()
        .iter()
        .filter(|p| p.is_privileged())
        .map(|p| p.id)
        .collect();
    assert!(!privileged.is_empty(), "fleet should contain privileged probes");
    let mins = data.per_probe_min();
    for id in privileged {
        assert!(!mins.contains_key(&id), "privileged probe leaked into Fig. 5");
    }
}

#[test]
fn edge_gain_study_composes_with_campaign_platform() {
    let (platform, _store) = build();
    let mut platform = platform;
    let report = edge_gain_study(&mut platform, 30);
    assert!(report.rows.len() >= 5);
    // Across continents the edge never loses to the cloud by more than
    // the fabric hop.
    for row in &report.rows {
        assert!(row.edge_median_ms <= row.cloud_median_ms + 1.0);
    }
}

#[test]
fn store_serialisation_round_trips_through_jsonl() {
    let (_platform, store) = build();
    let text = store.to_jsonl();
    let back = ResultStore::from_jsonl(&text).expect("parse our own dump");
    assert_eq!(back.len(), store.len());
    assert_eq!(back.samples()[0], store.samples()[0]);
    assert_eq!(
        back.samples()[store.len() - 1],
        store.samples()[store.len() - 1]
    );
}

#[test]
fn trends_and_eras_are_self_consistent() {
    let data = TrendDataset::figure1(0xF16);
    let eras = detect_eras(&data);
    // The edge era must start after cloud interest peaked.
    let cloud_peak = data.cloud_search.peak_year();
    assert!(eras[2].from >= cloud_peak);
    // Edge interest at the start of the edge era exceeds its CDN-era level.
    let early = data.edge_search.at(eras[0].to).unwrap_or(0.0);
    let at_start = data.edge_search.at(eras[2].from).unwrap();
    assert!(at_start > early);
}

#[test]
fn catalog_snapshots_shrink_platform_targets() {
    let base = PlatformConfig {
        fleet: FleetConfig {
            target_size: 200,
            seed: 5,
        },
        ..PlatformConfig::default()
    };
    let full = Platform::build(&base);
    let y2012 = Platform::build(&PlatformConfig {
        catalog_year: Some(2012),
        ..base.clone()
    });
    assert!(y2012.catalog().regions().len() < full.catalog().regions().len());
    // A European probe still has targets in 2012 (Dublin existed).
    let eu_probe = y2012
        .probes()
        .iter()
        .find(|p| p.continent == Continent::Europe)
        .unwrap();
    assert!(!y2012.targets_for(eu_probe, 3, 0).is_empty());
}
