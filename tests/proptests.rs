//! Cross-crate property tests on the pipeline's structural invariants.

use latency_shears::analysis::proximity::CountryMinReport;
use latency_shears::analysis::report::Table;
use latency_shears::apps::catalog::Envelope;
use latency_shears::apps::feasibility::FeasibilityZone;
use latency_shears::apps::{Application, Quadrant};
use latency_shears::atlas::TagFilter;
use latency_shears::prelude::*;
use proptest::prelude::*;

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (0.001f64..1e6, 1.0f64..1e3).prop_map(|(lo, factor)| Envelope::new(lo, lo * factor))
}

fn arb_application() -> impl Strategy<Value = Application> {
    (arb_envelope(), arb_envelope(), 0.0f64..500.0, any::<bool>(), 0.0f64..=1.0).prop_map(
        |(latency_ms, data_gb_per_day, market, human_centric, edge_reduction)| Application {
            name: "synthetic",
            latency_ms,
            data_gb_per_day,
            market_2025_busd: market,
            human_centric,
            edge_reduction,
            entities_per_metro: 1e5,
        },
    )
}

proptest! {
    #[test]
    fn ecdf_fraction_is_monotone_cdf(
        mut samples in proptest::collection::vec(0.0f64..1e5, 1..200),
        xs in proptest::collection::vec(0.0f64..1e5, 1..20),
    ) {
        samples.sort_by(f64::total_cmp);
        let e = Ecdf::new(samples);
        let mut sorted_xs = xs;
        sorted_xs.sort_by(f64::total_cmp);
        let mut prev = 0.0;
        for x in sorted_xs {
            let f = e.fraction_at_or_below(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn ecdf_quantile_and_fraction_are_inverse_ish(
        samples in proptest::collection::vec(0.0f64..1e4, 1..200),
        q in 0.01f64..1.0,
    ) {
        let e = Ecdf::new(samples);
        let v = e.quantile(q).unwrap();
        // At least q of the mass sits at or below the q-quantile.
        prop_assert!(e.fraction_at_or_below(v) >= q - 1e-9);
    }

    #[test]
    fn summary_orders_its_statistics(samples in proptest::collection::vec(0.0f64..1e5, 1..300)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.median);
        prop_assert!(s.median <= s.p75);
        prop_assert!(s.p75 <= s.p95);
        prop_assert!(s.p95 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn fig4_buckets_partition_the_line(rtt in 0.0f64..1e4) {
        let b = CountryMinReport::bucket_of(rtt);
        prop_assert!(b < 6);
        // Buckets are ordered: a larger RTT never lands in a smaller bucket.
        let b2 = CountryMinReport::bucket_of(rtt * 2.0 + 1.0);
        prop_assert!(b2 >= b);
    }

    #[test]
    fn quadrant_and_feasibility_are_total(app in arb_application()) {
        // Every synthetic application classifies without panicking, and
        // an in-zone verdict implies the quadrant with bandwidth demand
        // matches the zone's bandwidth rule.
        let q = Quadrant::classify(&app);
        let zone = FeasibilityZone::paper_defaults();
        let v = zone.classify(&app);
        if v.in_zone() {
            prop_assert!(
                app.data_gb_per_day.center() >= zone.bandwidth_gain_gb_per_day,
                "{q:?} in zone without bandwidth demand"
            );
            prop_assert!(app.latency_ms.center() >= zone.latency_floor_ms);
            prop_assert!(app.latency_ms.center() <= zone.latency_ceiling_ms);
        }
    }

    #[test]
    fn envelope_center_is_within_bounds(e in arb_envelope()) {
        prop_assert!(e.lo <= e.center() && e.center() <= e.hi);
        prop_assert!(e.decades() >= 0.0);
    }

    #[test]
    fn tag_filter_exclusion_dominates(
        tags in proptest::collection::vec("[a-z]{2,8}", 0..6),
        needle in "[a-z]{2,8}",
    ) {
        let filter = TagFilter::any().require(&needle).reject(&needle);
        // A filter requiring and rejecting the same tag matches nothing
        // that carries the tag.
        let mut with = tags.clone();
        with.push(needle.clone());
        prop_assert!(!filter.matches(&with));
        prop_assert!(!filter.matches_any(&with));
    }

    #[test]
    fn table_render_never_panics_and_aligns(
        headers in proptest::collection::vec("[ -~]{1,12}", 1..5),
        rows in proptest::collection::vec(proptest::collection::vec("[ -~]{0,16}", 0..7), 0..10),
    ) {
        let mut t = Table::new(headers.clone());
        for r in rows {
            t.row(r);
        }
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        prop_assert_eq!(lines.len(), 2 + t.len());
    }

    #[test]
    fn simtime_roundtrips_millis(ms in 0.0f64..1e12) {
        let t = SimTime::from_millis_f64(ms);
        prop_assert!((t.as_millis_f64() - ms).abs() < 1e-3);
    }

    #[test]
    fn retry_schedule_respects_its_bounds(
        max_retries in 0u32..8,
        base_s in 1u64..120,
        cap_s in 1u64..600,
        jitter in 0.0f64..1.0,
        timeout_s in 1u64..3600,
        seed in any::<u64>(),
    ) {
        use latency_shears::netsim::stochastic::SimRng;

        let policy = RetryPolicy {
            max_retries,
            base_backoff: SimTime::from_secs(base_s),
            max_backoff: SimTime::from_secs(cap_s),
            jitter,
            measurement_timeout: SimTime::from_secs(timeout_s),
            refund_failures: true,
        };
        let mut rng = SimRng::new(seed);
        let scheduled = SimTime::from_hours(3);
        let mut schedule = policy.schedule(scheduled);
        prop_assert_eq!(schedule.attempt_at(), scheduled);
        let mut taken = 0u32;
        let mut prev = scheduled;
        while schedule.next(&policy, &mut rng) {
            taken += 1;
            // Attempts move strictly forward and never leave the
            // policy's delay envelope.
            prop_assert!(schedule.attempt_at() > prev);
            prev = schedule.attempt_at();
            let delay = schedule.attempt_at().saturating_since(scheduled);
            prop_assert!(delay <= policy.max_total_delay());
            prop_assert!(delay <= policy.measurement_timeout);
            prop_assert!(taken <= max_retries, "retry budget exceeded");
        }
        prop_assert!(taken <= max_retries);
        // Once exhausted, the schedule stays exhausted.
        prop_assert!(!schedule.next(&policy, &mut rng));
    }

    #[test]
    fn credit_ledger_conserves_under_debit_refund_boost(
        initial in 0u64..1_000_000,
        ops in proptest::collection::vec((0u8..3, 1u64..10_000), 0..40),
    ) {
        use latency_shears::atlas::CreditLedger;

        let mut ledger = CreditLedger::new(initial);
        let mut boosted = 0u64;
        let mut debited = 0u64;
        for (op, amount) in ops {
            match op {
                0 => {
                    if ledger.debit(amount).is_ok() {
                        debited += amount;
                    }
                }
                1 => {
                    let refunded = ledger.refund(amount);
                    prop_assert!(refunded <= amount);
                }
                _ => {
                    ledger.boost(amount);
                    boosted += amount;
                }
            }
            // Credits are conserved: refunds move spent back to
            // balance, never mint. (No saturation at these magnitudes.)
            prop_assert_eq!(ledger.balance() + ledger.spent(), initial + boosted);
        }
        // Lifetime refunds never exceed what ever left the balance.
        prop_assert!(ledger.refunded() <= debited);
    }

    #[test]
    fn refund_once_is_idempotent_per_measurement_round(
        initial in 100_000u64..1_000_000,
        ops in proptest::collection::vec((0u64..8, 0u32..4, 1u64..500), 1..60),
    ) {
        use latency_shears::atlas::CreditLedger;
        use std::collections::HashSet;

        // The resume path replays refunds for rounds the journal already
        // settled; a replayed (measurement, round) key must never mint.
        let mut ledger = CreditLedger::new(initial);
        let mut seen: HashSet<(u64, u32)> = HashSet::new();
        let mut expected_refunded = 0u64;
        for &(measurement, round, amount) in &ops {
            if ledger.debit(amount).is_err() {
                continue;
            }
            let got = ledger.refund_once(measurement, round, amount);
            if seen.insert((measurement, round)) {
                prop_assert_eq!(got, amount, "first refund pays in full");
                expected_refunded += amount;
            } else {
                prop_assert_eq!(got, 0, "replayed refund minted credits");
            }
            // Conserved at every step: refunds move spent back to
            // balance, duplicates leave the debit in place.
            prop_assert_eq!(ledger.balance() + ledger.spent(), initial);
        }
        prop_assert_eq!(ledger.refunded(), expected_refunded);
    }
}

proptest! {
    // Whole-platform route comparisons are expensive; a handful of
    // random worlds is plenty to catch a divergence.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn routers_and_tables_agree_when_the_fault_plan_is_empty(
        seed in 0u64..1_000,
        probes in 25usize..45,
    ) {
        use latency_shears::netsim::fault::FaultRouter;
        use latency_shears::netsim::Router;

        let p = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: probes,
                seed,
            },
            ..PlatformConfig::default()
        });
        let plan = FaultPlan::empty("noop");
        let table = p.route_table(1, 1, 2);
        let mut router = Router::new(p.topology());
        let mut faulty = FaultRouter::new(p.topology(), &plan);
        let t = SimTime::from_hours(seed % 48);
        for probe in p.probes() {
            let from = p.probe_node(probe.id);
            for &target in &p.targets_for(probe, 1, 1) {
                let to = p.dc_node(target as usize);
                let want = router.path(from, to).map(|i| (i.links.clone(), i.base_one_way_ms));
                let via_table = table.path(from, to)
                    .map(|r| { let i = r.to_path_info(); (i.links, i.base_one_way_ms) });
                let via_fault = faulty.path_at(from, to, t)
                    .map(|i| (i.links.clone(), i.base_one_way_ms));
                prop_assert_eq!(&want, &via_table, "table diverged {:?}->{:?}", from, to);
                prop_assert_eq!(&want, &via_fault, "fault router diverged {:?}->{:?}", from, to);
            }
        }
    }

    #[test]
    fn durable_crash_resume_conserves_ledger_and_samples(
        seed in 0u64..500,
        crash_after in 0u32..3,
        threads in 1usize..5,
        chaos in any::<bool>(),
    ) {
        use latency_shears::atlas::{Campaign, CampaignError, DurabilityConfig};

        let p = Platform::build(&PlatformConfig {
            fleet: FleetConfig {
                target_size: 30,
                seed,
            },
            ..PlatformConfig::default()
        });
        let cfg = CampaignConfig {
            rounds: 4,
            targets_per_probe: 1,
            adjacent_targets: 1,
            credits: 10_000_000,
            faults: if chaos { FaultConfig::chaos() } else { FaultConfig::none() },
            ..CampaignConfig::quick()
        };

        let base = std::env::temp_dir().join(format!(
            "shears-prop-journal-{}-{}-{}-{}-{}",
            std::process::id(), seed, crash_after, threads, chaos,
        ));
        let clean_path = base.with_extension("clean.wal");
        let crash_path = base.with_extension("crash.wal");
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&crash_path);

        // The uninterrupted reference run.
        let clean = Campaign::new(&p, cfg)
            .run_durable(threads, &DurabilityConfig::new(&clean_path))
            .unwrap();

        // Crash after round `crash_after`, then resume to completion.
        let crashing = DurabilityConfig {
            crash_after_round: Some(crash_after),
            ..DurabilityConfig::new(&crash_path)
        };
        let err = Campaign::new(&p, cfg).run_durable(threads, &crashing).unwrap_err();
        prop_assert!(matches!(err, CampaignError::SimulatedCrash { .. }));
        let resumed =
            Campaign::resume(&p, &DurabilityConfig::new(&crash_path), threads).unwrap();

        prop_assert_eq!(clean.store.samples(), resumed.store.samples());
        prop_assert_eq!(clean.ledger.balance(), resumed.ledger.balance());
        prop_assert_eq!(clean.ledger.spent(), resumed.ledger.spent());
        prop_assert_eq!(clean.ledger.refunded(), resumed.ledger.refunded());
        // Conservation across the crash: nothing minted, nothing lost.
        prop_assert_eq!(
            resumed.ledger.balance() + resumed.ledger.spent(),
            cfg.credits
        );
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&crash_path);
    }
}

// ---------------------------------------------------------------------
// Incremental HTTP parser: chunk-partition independence.
//
// The reactor feeds the parser whatever byte slices the kernel hands
// it, so the parse outcome must be a function of the byte *stream*,
// never of how it was chopped up. For every corpus entry — valid,
// pipelined, hostile percent-escapes, oversized Content-Length, plain
// garbage — an arbitrary partition into chunks must produce the exact
// same trace (requests parsed + terminal verdict) as feeding the whole
// buffer at once, and must never panic.

use latency_shears::api::http::{HttpError, RequestParser};

/// Wire corpus the partition property quantifies over. Index-addressed
/// so proptest shrinks to a corpus entry + partition, which reproduces
/// exactly.
const WIRE_CORPUS: &[&[u8]] = &[
    b"GET /api/v2/credits HTTP/1.1\r\nhost: t\r\n\r\n",
    b"GET /api/v2/probes?limit=5&country=NL HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n",
    b"POST /api/v2/measurements HTTP/1.1\r\ncontent-length: 24\r\n\r\n{\"target_region\":0,\"x\":1}",
    // Pipelined keep-alive pair ending in a close.
    b"GET /api/v2/credits HTTP/1.1\r\n\r\nGET /api/v2/regions HTTP/1.1\r\nConnection: close\r\n\r\n",
    // Hostile: bare '%' followed by multi-byte UTF-8 in the path.
    "GET /api/v2/%\u{4e2d} HTTP/1.1\r\nhost: t\r\n\r\n".as_bytes(),
    // Hostile: truncated and overflowing percent escapes.
    b"GET /a%2 HTTP/1.1\r\n\r\n",
    b"GET /a%zz%ff HTTP/1.1\r\n\r\n",
    // Hostile: Content-Length larger than any sane body cap.
    b"POST /api/v2/measurements HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
    b"POST /x HTTP/1.1\r\ncontent-length: not-a-number\r\n\r\n",
    // Declared body never arrives (EOF mid-body).
    b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc",
    // Not HTTP at all.
    b"NOTHTTP\r\n\r\n",
    b"GET / HTTP/2\r\n\r\n",
    b"\r\n\r\n\r\n",
];

/// Parses `bytes` delivered as the given chunk partition, returning
/// the comparable trace: every request observed (rendered to a string)
/// followed by the terminal verdict. Errors compare by rendered
/// message, which pins the *reason*, not just the kind.
fn parse_trace(bytes: &[u8], cuts: &[usize]) -> Vec<String> {
    let mut trace = Vec::new();
    let mut parser = RequestParser::new();
    let mut start = 0;
    let mut feeds: Vec<&[u8]> = Vec::new();
    for &cut in cuts {
        feeds.push(&bytes[start..cut]);
        start = cut;
    }
    feeds.push(&bytes[start..]);
    let last = feeds.len() - 1;
    for (i, chunk) in feeds.into_iter().enumerate() {
        parser.feed(chunk);
        let eof = i == last;
        loop {
            match parser.poll(eof) {
                Ok(Some(req)) => trace.push(format!(
                    "req {:?} {} q={:?} body={:?}",
                    req.method, req.path, req.query, req.body
                )),
                Ok(None) => break,
                Err(e) => {
                    trace.push(format!("err {e}"));
                    return trace;
                }
            }
        }
    }
    trace
}

// ---------------------------------------------------------------------
// Pipelined work-stream framing: the raw-stream front the reactor
// upgrades work connections into (DESIGN.md §7j) gets the same battery
// as the HTTP parser above. A pipelined FRAME burst must reach an
// identical reply/verdict sequence under every byte-boundary split,
// and torn or bit-flipped frames must close the stream with a typed
// [`StreamError`] — never panic, never merge corrupt bytes.

use latency_shears::api::transport::{StreamError, WorkStream};
use latency_shears::api::work::{self as work, WorkQueue, WorkSpec};
use latency_shears::atlas::ResultStore;
use std::time::Instant;

/// Rounds in the single-shard campaign the stream corpus drives; a
/// burst of exactly this many frames completes it (and earns a pushed
/// `Done`).
const STREAM_ROUNDS: u32 = 4;

fn stream_queue() -> WorkQueue {
    WorkQueue::new(WorkSpec::quick(STREAM_ROUNDS, 1))
}

/// The worker id a fresh queue hands its first registrant — stable, so
/// a burst can be built before the trace run that replays it.
fn first_worker_id() -> u64 {
    stream_queue().register(Instant::now())
}

/// A valid pipelined burst: HELLO, POLL, then `frames` FRAME
/// submissions for shard 0 — all CRC-framed, ready for the wire.
fn stream_burst_wire(frames: u32) -> Vec<u8> {
    use latency_shears::atlas::journal::frame;
    let worker = first_worker_id();
    let mut wire = Vec::new();
    wire.extend_from_slice(&frame(&work::stream_hello_payload(false)));
    wire.extend_from_slice(&frame(&work::poll_payload(worker)));
    for round in 0..frames {
        wire.extend_from_slice(&frame(&work::frame_submit_payload(
            worker,
            0,
            round,
            10,
            0,
            &ResultStore::new(),
        )));
    }
    wire
}

/// Feeds `wire` to a fresh server-side stream as the given partition,
/// driving after every chunk, and returns the accumulated reply bytes
/// plus the terminal error (if the stream closed). Reply bytes are the
/// comparable artifact: they contain the full welcome/reply/verdict
/// sequence and nothing time-dependent.
fn stream_trace(wire: &[u8], cuts: &[usize]) -> (Vec<u8>, Option<StreamError>) {
    let queue = stream_queue();
    let mut ws = WorkStream::new();
    let now = Instant::now();
    let mut out = Vec::new();
    let mut start = 0;
    let mut feeds: Vec<&[u8]> = Vec::new();
    for &cut in cuts {
        feeds.push(&wire[start..cut]);
        start = cut;
    }
    feeds.push(&wire[start..]);
    for chunk in feeds {
        ws.feed(chunk);
        if let Err(e) = ws.drive(&queue, now, &mut out) {
            ws.on_close(&queue);
            return (out, Some(e));
        }
        ws.note_flushed(&queue, now);
    }
    (out, None)
}

/// Decodes a reply byte stream into rendered messages for prefix
/// comparisons (the framing itself is already byte-compared).
fn decode_replies(out: &[u8]) -> Vec<String> {
    let mut d = latency_shears::api::StreamDecoder::new();
    d.feed(out);
    let mut msgs = Vec::new();
    while let Ok(Some(p)) = d.next_payload() {
        match work::decode_stream_msg(&p) {
            Ok(m) => msgs.push(format!("{m:?}")),
            Err(why) => msgs.push(format!("undecodable: {why}")),
        }
    }
    msgs
}

proptest! {
    #[test]
    fn parser_verdict_is_chunk_partition_independent(
        idx in 0..WIRE_CORPUS.len(),
        raw_cuts in proptest::collection::vec(0usize..200, 0..12),
    ) {
        let bytes = WIRE_CORPUS[idx];
        // Fold arbitrary cut points into a sorted partition of `bytes`
        // (empty chunks included on purpose — feed(&[]) must be a
        // no-op too).
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();

        let whole = parse_trace(bytes, &[]);
        let chunked = parse_trace(bytes, &cuts);
        prop_assert_eq!(&whole, &chunked, "partition {:?} diverged on corpus[{}]", cuts, idx);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        raw_cuts in proptest::collection::vec(0usize..512, 0..8),
    ) {
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parse_trace(&bytes, &cuts)));
        prop_assert!(outcome.is_ok(), "parser panicked on {:?}", bytes);
        // And whatever the verdict was, it is still partition-independent.
        let whole =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parse_trace(&bytes, &[])))
                .unwrap();
        prop_assert_eq!(outcome.unwrap(), whole);
    }

    #[test]
    fn stream_verdicts_are_chunk_partition_independent(
        frames in 0u32..5,
        raw_cuts in proptest::collection::vec(0usize..600, 0..12),
    ) {
        let wire = stream_burst_wire(frames);
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (wire.len() + 1)).collect();
        cuts.sort_unstable();

        let (whole_out, whole_err) = stream_trace(&wire, &[]);
        let (chunk_out, chunk_err) = stream_trace(&wire, &cuts);
        prop_assert_eq!(whole_err, None, "a clean burst must not error");
        prop_assert_eq!(chunk_err, None, "partition {:?} invented an error", cuts);
        // The reply *bytes* are identical — welcome, poll reply, one
        // tagged verdict per frame, pushes included — so the verdict
        // sequence cannot depend on how the kernel chopped the stream.
        prop_assert_eq!(&whole_out, &chunk_out, "partition {:?} changed the replies", cuts);
        // welcome + poll reply + one verdict per frame, plus the
        // pushed Done when the burst completes the campaign.
        prop_assert_eq!(
            decode_replies(&whole_out).len() as u32,
            2 + frames + u32::from(frames == STREAM_ROUNDS)
        );
    }

    #[test]
    fn stream_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        raw_cuts in proptest::collection::vec(0usize..512, 0..8),
    ) {
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();
        let whole = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stream_trace(&bytes, &[])
        }));
        let chunked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stream_trace(&bytes, &cuts)
        }));
        prop_assert!(whole.is_ok() && chunked.is_ok(), "stream panicked on {:?}", bytes);
        // Same verdict — typed error or replies — however delivered.
        prop_assert_eq!(whole.unwrap(), chunked.unwrap());
    }

    #[test]
    fn stream_bit_flips_are_caught_never_merged(
        frames in 1u32..5,
        flip_at in 0usize..1024,
        flip_bit in 0u8..8,
    ) {
        // Flip one bit anywhere in a valid pipelined burst: the stream
        // must either close with a typed error or — when the flip
        // tears the tail frame into "not yet" — reply to a strict
        // prefix of the burst. It must never decode *different*
        // messages, and never panic.
        let clean = stream_burst_wire(frames);
        let mut wire = clean.clone();
        let at = flip_at % wire.len();
        wire[at] ^= 1 << flip_bit;

        let (clean_out, clean_err) = stream_trace(&clean, &[]);
        prop_assert_eq!(clean_err, None);
        let clean_replies = decode_replies(&clean_out);

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stream_trace(&wire, &[])
        }));
        prop_assert!(outcome.is_ok(), "bit flip at {} panicked", at);
        let (out, err) = outcome.unwrap();
        let replies = decode_replies(&out);
        prop_assert!(
            replies.len() <= clean_replies.len(),
            "a corrupt burst must not grow replies"
        );
        prop_assert_eq!(
            &clean_replies[..replies.len()],
            &replies[..],
            "flip at byte {} produced divergent replies instead of an error",
            at
        );
        if err.is_none() {
            prop_assert!(
                replies.len() < clean_replies.len(),
                "flip at byte {} was silently accepted",
                at
            );
        }
    }

    #[test]
    fn parser_errors_are_sticky_and_harmless(
        idx in 0..WIRE_CORPUS.len(),
        extra in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // After a terminal error the parser may be fed more garbage
        // without panicking — the reactor closes the connection, but a
        // race may deliver one more chunk first.
        let bytes = WIRE_CORPUS[idx];
        let mut parser = RequestParser::new();
        parser.feed(bytes);
        let mut errored = false;
        loop {
            match parser.poll(true) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(HttpError::ConnectionClosed) => break,
                Err(_) => { errored = true; break; }
            }
        }
        parser.feed(&extra);
        let after = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut p = parser;
            let _ = p.poll(true);
        }));
        prop_assert!(after.is_ok(), "post-error feed panicked (errored={errored})");
    }
}
