//! Distributed-execution recovery harness.
//!
//! The distribution contract (DESIGN.md §7i): a campaign executed by a
//! coordinator + worker fleet over the work API merges to a
//! `ResultStore` and ledger **bit-identical** to the sequential run —
//! for every worker count, crash schedule, and reassignment history.
//! These sweeps pin that contract:
//!
//! * clean fleets of 1/2/4/8 workers, diffed byte-for-byte against
//!   both the sequential [`Campaign::run`] and the durable barrier
//!   runner;
//! * the kill grid — 5 seeds × kill round {0,1,2} × {2,4} workers ×
//!   {reassign-to-survivor, restart-and-resume-from-WAL} — every cell
//!   bit-identical, ledger conserved;
//! * hangs (silent worker → failure detector → reassignment, late
//!   duplicate frames dropped, never double-merged) and delays
//!   (alive-but-wedged worker → blown round deadlines → fencing);
//! * degraded completion (fleet death → lost rounds attributed in
//!   place, row-for-row aligned with the clean store) vs. strict mode
//!   (fleet death → typed abort).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use latency_shears::dist::{
    run_distributed, ChaosProxy, DistConfig, DistError, DistOutcome, FleetSpec,
};
use latency_shears::prelude::*;

const SEEDS: [u64; 5] = [1, 2, 3, 5, 8];
const KILL_ROUNDS: [u32; 3] = [0, 1, 2];
const WORKER_COUNTS: [usize; 2] = [2, 4];
const ROUNDS: u32 = 4;
const SHARDS: u32 = 4;
const CREDITS: u64 = 50_000_000;

fn tiny_cfg(seed: u64) -> PlatformConfig {
    PlatformConfig {
        fleet: FleetConfig {
            target_size: 30,
            seed,
        },
        ..PlatformConfig::default()
    }
}

fn campaign_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        rounds: ROUNDS,
        targets_per_probe: 1,
        adjacent_targets: 1,
        seed,
        credits: CREDITS,
        ..CampaignConfig::quick()
    }
}

/// Test-speed failure detection: everything resolves in a few hundred
/// milliseconds instead of the human-scale defaults.
fn dist_cfg(shards: u32) -> DistConfig {
    DistConfig {
        heartbeat_interval: Duration::from_millis(15),
        heartbeat_timeout: Duration::from_millis(150),
        round_timeout: Duration::from_millis(2_000),
        retry_base: Duration::from_millis(40),
        retry_cap: Duration::from_millis(200),
        stall_grace: Duration::from_millis(400),
        ..DistConfig::quick(shards)
    }
}

fn tmp_wal_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "shears-dist-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed),
    ))
}

fn run_fleet(seed: u64, fleet: FleetSpec, dcfg: DistConfig, tag: &str) -> Result<DistOutcome, DistError> {
    let root = tmp_wal_root(tag);
    let out = run_distributed(&tiny_cfg(seed), campaign_cfg(seed), dcfg, fleet, &root);
    let _ = std::fs::remove_dir_all(&root);
    out
}

fn clean_baseline(seed: u64) -> DurableOutcome {
    let platform = Platform::build(&tiny_cfg(seed));
    let path = tmp_wal_root("baseline").with_extension("wal");
    let clean = Campaign::new(&platform, campaign_cfg(seed))
        .run_durable(1, &DurabilityConfig::new(&path))
        .expect("clean durable run");
    let _ = std::fs::remove_file(&path);
    clean
}

fn assert_bit_identical(clean: &DurableOutcome, out: &DistOutcome, what: &str) {
    assert_eq!(
        clean.store.samples(),
        out.store.samples(),
        "distributed store diverges: {what}"
    );
    assert_eq!(clean.ledger.balance(), out.ledger.balance(), "balance drift: {what}");
    assert_eq!(clean.ledger.spent(), out.ledger.spent(), "spend drift: {what}");
    assert_eq!(clean.ledger.refunded(), out.ledger.refunded(), "refund drift: {what}");
    assert_eq!(
        out.ledger.balance() + out.ledger.spent(),
        CREDITS,
        "credits not conserved: {what}"
    );
}

#[test]
fn clean_fleets_of_every_size_merge_bit_identically() {
    let seed = 7;
    let clean = clean_baseline(seed);
    // The durable barrier runner is itself pinned against the plain
    // sequential campaign, so one transitive check suffices here.
    let platform = Platform::build(&tiny_cfg(seed));
    let plain = Campaign::new(&platform, campaign_cfg(seed)).run().expect("plain run");
    assert_eq!(plain.samples(), clean.store.samples(), "durable vs plain");

    for workers in [1usize, 2, 4, 8] {
        let out = run_fleet(seed, FleetSpec::clean(workers), dist_cfg(SHARDS), "clean")
            .expect("clean fleet");
        assert_bit_identical(&clean, &out, &format!("{workers} workers"));
        assert_eq!(
            out.metrics.frames_accepted,
            u64::from(SHARDS * ROUNDS),
            "every shard-round arrives exactly once at {workers} workers"
        );
        assert_eq!(out.metrics.lost_rounds, 0);
    }
}

/// The kill grid, reassignment flavour: the killed worker stays dead
/// and a survivor takes over its shard mid-campaign.
#[test]
fn kill_grid_shards_are_reassigned_to_survivors() {
    for seed in SEEDS {
        let clean = clean_baseline(seed);
        for kill in KILL_ROUNDS {
            for workers in WORKER_COUNTS {
                let what = format!("seed {seed} kill {kill} workers {workers} reassign");
                let fleet = FleetSpec::clean(workers).with_chaos(0, ChaosProxy::kill_at(kill));
                let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "reassign").expect(&what);
                assert_bit_identical(&clean, &out, &what);
                assert!(
                    out.metrics.shards_reassigned >= 1,
                    "{what}: the dead worker's shard was never handed over"
                );
                assert!(out.metrics.heartbeats_missed >= 1, "{what}: death went undetected");
            }
        }
    }
}

/// The kill grid, restart flavour: the worker dies *after journaling*
/// a round (the frame exists only in its WAL) and is respawned with
/// the same WAL directory — the successor must resume the shard from
/// the journal, re-framing the unsubmitted round without recomputing.
#[test]
fn kill_grid_restarted_workers_resume_from_their_wal() {
    for seed in SEEDS {
        let clean = clean_baseline(seed);
        for kill in KILL_ROUNDS {
            for workers in WORKER_COUNTS {
                let what = format!("seed {seed} kill {kill} workers {workers} restart");
                let fleet = FleetSpec::clean(workers)
                    .with_chaos(0, ChaosProxy::kill_after_journal_at(kill))
                    .restart_killed();
                let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "restart").expect(&what);
                assert_bit_identical(&clean, &out, &what);
                assert_eq!(
                    out.metrics.workers_registered,
                    workers as u64 + 1,
                    "{what}: the restarted incarnation must register anew"
                );
            }
        }
    }
}

/// A hung worker goes silent past the heartbeat timeout: its shard is
/// reassigned, the survivor recomputes the round, and when the
/// revenant wakes and submits its stale frame the digest dedup drops
/// it — proving reassignment is idempotent, not double-merged.
#[test]
fn hung_workers_are_detected_and_their_late_frames_deduplicated() {
    let seed = 11;
    let clean = clean_baseline(seed);
    let fleet =
        FleetSpec::clean(2).with_chaos(0, ChaosProxy::hang_at(1, Duration::from_millis(500)));
    let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "hang").expect("hang fleet");
    assert_bit_identical(&clean, &out, "hang");
    assert!(out.metrics.heartbeats_missed >= 1, "hang went undetected");
    assert!(out.metrics.shards_reassigned >= 1, "hung shard never reassigned");
    assert!(
        out.metrics.duplicate_frames_dropped >= 1,
        "the revenant's late frames must be dropped as duplicates, got {:?}",
        out.metrics
    );
}

/// A delayed worker keeps heartbeating but blows its round deadline:
/// the coordinator backs off with jitter, then fences the assignment
/// and hands the shard to a survivor — without ever declaring the
/// slow worker dead.
#[test]
fn wedged_workers_blow_round_deadlines_and_get_fenced() {
    let seed = 13;
    let clean = clean_baseline(seed);
    let dcfg = DistConfig {
        round_timeout: Duration::from_millis(100),
        max_round_retries: 1,
        ..dist_cfg(SHARDS)
    };
    let fleet =
        FleetSpec::clean(2).with_chaos(0, ChaosProxy::delay_at(1, Duration::from_millis(600)));
    let out = run_fleet(seed, fleet, dcfg, "delay").expect("delay fleet");
    assert_bit_identical(&clean, &out, "delay");
    assert!(out.metrics.rounds_retried >= 1, "deadline never blew: {:?}", out.metrics);
    assert!(out.metrics.shards_reassigned >= 1, "wedged shard never fenced");
}

/// Degraded completion: the whole fleet dies and the campaign still
/// finishes, with every missing `(shard, round)` written off as lost
/// and its samples synthesised in place — same rows, same order, same
/// probes as the clean store, loss attributed rather than absent.
#[test]
fn degraded_mode_attributes_lost_rounds_in_place() {
    let seed = 17;
    let clean = clean_baseline(seed);
    let fleet = FleetSpec::clean(1).with_chaos(0, ChaosProxy::kill_at(1));
    let out = run_fleet(seed, fleet, dist_cfg(SHARDS).degraded(), "degraded")
        .expect("degraded completion");

    // One shard delivered one round before the fleet died.
    assert_eq!(
        out.metrics.lost_rounds,
        u64::from(SHARDS * ROUNDS - 1),
        "exactly the undelivered shard-rounds are lost: {:?}",
        out.metrics
    );
    let clean_rows = clean.store.samples();
    let rows = out.store.samples();
    assert_eq!(clean_rows.len(), rows.len(), "lost rounds must not drop rows");
    let mut delivered = 0usize;
    for (i, (c, d)) in clean_rows.iter().zip(&rows).enumerate() {
        assert_eq!((c.probe, c.region, c.at), (d.probe, d.region, d.at), "row {i} misaligned");
        if d.sent > 0 {
            assert_eq!(c, d, "delivered row {i} diverges");
            delivered += 1;
        } else {
            assert!(d.min_ms.is_infinite() && d.received == 0, "row {i} not marked lost");
        }
    }
    assert!(delivered > 0, "the delivered round must survive verbatim");
    assert!(
        out.ledger.spent() < clean.ledger.spent(),
        "lost rounds must not be charged"
    );
    assert_eq!(out.ledger.balance() + out.ledger.spent(), CREDITS);
}

/// Strict mode: the same fleet death aborts the campaign with a typed
/// error naming the stalled round, instead of completing degraded.
#[test]
fn strict_mode_aborts_when_the_fleet_dies() {
    let fleet = FleetSpec::clean(1).with_chaos(0, ChaosProxy::kill_at(1));
    let err = run_fleet(17, fleet, dist_cfg(SHARDS), "strict")
        .expect_err("strict mode must refuse to complete");
    match err {
        DistError::Stalled { round, missing } => {
            assert_eq!(round, 0, "the merge was still waiting on round 0");
            assert!(!missing.is_empty(), "the stalled shards must be named");
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

/// Focused restart-resume: kill a lone worker after it journals a
/// round it never submitted; its successor must deliver that round
/// from the WAL and the campaign must not lose (or duplicate) a thing.
#[test]
fn a_restarted_worker_resends_its_journaled_unsubmitted_round() {
    let seed = 19;
    let clean = clean_baseline(seed);
    let root = tmp_wal_root("resume");
    let fleet = FleetSpec::clean(1)
        .with_chaos(0, ChaosProxy::kill_after_journal_at(2))
        .restart_killed();
    let out = run_distributed(&tiny_cfg(seed), campaign_cfg(seed), dist_cfg(2), fleet, &root)
        .expect("restart-resume");
    assert_bit_identical(&clean, &out, "restart-resume");
    assert_eq!(out.metrics.workers_registered, 2, "one restart expected");
    assert!(
        root.join("worker-0").join("shard-0.wal").exists(),
        "the worker's WAL must survive the crash"
    );
    let _ = std::fs::remove_dir_all(&root);
}
