//! Distributed-execution recovery harness.
//!
//! The distribution contract (DESIGN.md §7i): a campaign executed by a
//! coordinator + worker fleet over the work API merges to a
//! `ResultStore` and ledger **bit-identical** to the sequential run —
//! for every worker count, crash schedule, and reassignment history.
//! These sweeps pin that contract:
//!
//! * clean fleets of 1/2/4/8 workers, diffed byte-for-byte against
//!   both the sequential [`Campaign::run`] and the durable barrier
//!   runner;
//! * the kill grid — 5 seeds × kill round {0,1,2} × {2,4} workers ×
//!   {reassign-to-survivor, restart-and-resume-from-WAL} — every cell
//!   bit-identical, ledger conserved;
//! * hangs (silent worker → failure detector → reassignment, late
//!   duplicate frames dropped, never double-merged) and delays
//!   (alive-but-wedged worker → blown round deadlines → fencing);
//! * degraded completion (fleet death → lost rounds attributed in
//!   place, row-for-row aligned with the clean store) vs. strict mode
//!   (fleet death → typed abort).
//!
//! Every sweep runs over **both work-plane transports** — the HTTP
//! compat shim and the pipelined TCP stream — and the merged bytes
//! must not depend on which wire carried them (DESIGN.md §7j).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use latency_shears::dist::{
    run_distributed, ChaosProxy, DistConfig, DistError, DistOutcome, FleetSpec, WorkTransport,
};
use latency_shears::prelude::*;

const TRANSPORTS: [WorkTransport; 2] = [WorkTransport::Http, WorkTransport::Tcp];
const SEEDS: [u64; 5] = [1, 2, 3, 5, 8];
const KILL_ROUNDS: [u32; 3] = [0, 1, 2];
const WORKER_COUNTS: [usize; 2] = [2, 4];
const ROUNDS: u32 = 4;
const SHARDS: u32 = 4;
const CREDITS: u64 = 50_000_000;

fn tiny_cfg(seed: u64) -> PlatformConfig {
    PlatformConfig {
        fleet: FleetConfig {
            target_size: 30,
            seed,
        },
        ..PlatformConfig::default()
    }
}

fn campaign_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig {
        rounds: ROUNDS,
        targets_per_probe: 1,
        adjacent_targets: 1,
        seed,
        credits: CREDITS,
        ..CampaignConfig::quick()
    }
}

/// Test-speed failure detection: everything resolves in a few hundred
/// milliseconds instead of the human-scale defaults.
fn dist_cfg(shards: u32) -> DistConfig {
    DistConfig {
        heartbeat_interval: Duration::from_millis(15),
        heartbeat_timeout: Duration::from_millis(150),
        round_timeout: Duration::from_millis(2_000),
        retry_base: Duration::from_millis(40),
        retry_cap: Duration::from_millis(200),
        stall_grace: Duration::from_millis(400),
        ..DistConfig::quick(shards)
    }
}

fn tmp_wal_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "shears-dist-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed),
    ))
}

fn run_fleet(seed: u64, fleet: FleetSpec, dcfg: DistConfig, tag: &str) -> Result<DistOutcome, DistError> {
    let root = tmp_wal_root(tag);
    let out = run_distributed(&tiny_cfg(seed), campaign_cfg(seed), dcfg, fleet, &root);
    let _ = std::fs::remove_dir_all(&root);
    out
}

fn clean_baseline(seed: u64) -> DurableOutcome {
    let platform = Platform::build(&tiny_cfg(seed));
    let path = tmp_wal_root("baseline").with_extension("wal");
    let clean = Campaign::new(&platform, campaign_cfg(seed))
        .run_durable(1, &DurabilityConfig::new(&path))
        .expect("clean durable run");
    let _ = std::fs::remove_file(&path);
    clean
}

fn assert_bit_identical(clean: &DurableOutcome, out: &DistOutcome, what: &str) {
    assert_eq!(
        clean.store.samples(),
        out.store.samples(),
        "distributed store diverges: {what}"
    );
    assert_eq!(clean.ledger.balance(), out.ledger.balance(), "balance drift: {what}");
    assert_eq!(clean.ledger.spent(), out.ledger.spent(), "spend drift: {what}");
    assert_eq!(clean.ledger.refunded(), out.ledger.refunded(), "refund drift: {what}");
    assert_eq!(
        out.ledger.balance() + out.ledger.spent(),
        CREDITS,
        "credits not conserved: {what}"
    );
}

#[test]
fn clean_fleets_of_every_size_merge_bit_identically() {
    let seed = 7;
    let clean = clean_baseline(seed);
    // The durable barrier runner is itself pinned against the plain
    // sequential campaign, so one transitive check suffices here.
    let platform = Platform::build(&tiny_cfg(seed));
    let plain = Campaign::new(&platform, campaign_cfg(seed)).run().expect("plain run");
    assert_eq!(plain.samples(), clean.store.samples(), "durable vs plain");

    for workers in [1usize, 2, 4, 8] {
        let mut stores = Vec::new();
        for transport in TRANSPORTS {
            let fleet = FleetSpec::clean(workers).transport(transport);
            let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "clean").expect("clean fleet");
            assert_bit_identical(&clean, &out, &format!("{workers} workers {transport:?}"));
            assert_eq!(
                out.metrics.frames_accepted,
                u64::from(SHARDS * ROUNDS),
                "every shard-round arrives exactly once at {workers} workers over {transport:?}"
            );
            assert_eq!(out.metrics.lost_rounds, 0);
            assert_eq!(
                out.worker_stats.frames_sent,
                u64::from(SHARDS * ROUNDS),
                "no resends on a clean fleet over {transport:?}"
            );
            stores.push(out.store);
        }
        // Explicit cross-transport check on top of the transitive one:
        // the wire must never leak into the merged bytes.
        assert_eq!(
            stores[0].samples(),
            stores[1].samples(),
            "HTTP and TCP merges diverge at {workers} workers"
        );
    }
}

/// The kill grid, reassignment flavour: the killed worker stays dead
/// and a survivor takes over its shard mid-campaign.
#[test]
fn kill_grid_shards_are_reassigned_to_survivors() {
    for seed in SEEDS {
        let clean = clean_baseline(seed);
        for kill in KILL_ROUNDS {
            for workers in WORKER_COUNTS {
                for transport in TRANSPORTS {
                    let what =
                        format!("seed {seed} kill {kill} workers {workers} {transport:?} reassign");
                    let fleet = FleetSpec::clean(workers)
                        .with_chaos(0, ChaosProxy::kill_at(kill))
                        .transport(transport);
                    let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "reassign").expect(&what);
                    assert_bit_identical(&clean, &out, &what);
                    assert!(
                        out.metrics.shards_reassigned >= 1,
                        "{what}: the dead worker's shard was never handed over"
                    );
                    assert!(
                        out.metrics.heartbeats_missed >= 1,
                        "{what}: death went undetected"
                    );
                }
            }
        }
    }
}

/// The kill grid, restart flavour: the worker dies *after journaling*
/// a round (the frame exists only in its WAL) and is respawned with
/// the same WAL directory — the successor must resume the shard from
/// the journal, re-framing the unsubmitted round without recomputing.
#[test]
fn kill_grid_restarted_workers_resume_from_their_wal() {
    for seed in SEEDS {
        let clean = clean_baseline(seed);
        for kill in KILL_ROUNDS {
            for workers in WORKER_COUNTS {
                for transport in TRANSPORTS {
                    let what =
                        format!("seed {seed} kill {kill} workers {workers} {transport:?} restart");
                    let fleet = FleetSpec::clean(workers)
                        .with_chaos(0, ChaosProxy::kill_after_journal_at(kill))
                        .restart_killed()
                        .transport(transport);
                    let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "restart").expect(&what);
                    assert_bit_identical(&clean, &out, &what);
                    assert_eq!(
                        out.metrics.workers_registered,
                        workers as u64 + 1,
                        "{what}: the restarted incarnation must register anew"
                    );
                }
            }
        }
    }
}

/// A hung worker goes silent past the heartbeat timeout: its shard is
/// reassigned, the survivor recomputes the round, and when the
/// revenant wakes and submits its stale frame the digest dedup drops
/// it — proving reassignment is idempotent, not double-merged.
#[test]
fn hung_workers_are_detected_and_their_late_frames_deduplicated() {
    let seed = 11;
    let clean = clean_baseline(seed);
    for transport in TRANSPORTS {
        let fleet = FleetSpec::clean(2)
            .with_chaos(0, ChaosProxy::hang_at(1, Duration::from_millis(500)))
            .transport(transport);
        let out = run_fleet(seed, fleet, dist_cfg(SHARDS), "hang").expect("hang fleet");
        assert_bit_identical(&clean, &out, &format!("hang {transport:?}"));
        assert!(out.metrics.heartbeats_missed >= 1, "hang went undetected");
        assert!(out.metrics.shards_reassigned >= 1, "hung shard never reassigned");
        assert!(
            out.metrics.duplicate_frames_dropped >= 1,
            "the revenant's late frames must be dropped as duplicates over {transport:?}, got {:?}",
            out.metrics
        );
    }
}

/// A delayed worker keeps heartbeating but blows its round deadline:
/// the coordinator backs off with jitter, then fences the assignment
/// and hands the shard to a survivor — without ever declaring the
/// slow worker dead.
#[test]
fn wedged_workers_blow_round_deadlines_and_get_fenced() {
    let seed = 13;
    let clean = clean_baseline(seed);
    for transport in TRANSPORTS {
        let dcfg = DistConfig {
            round_timeout: Duration::from_millis(100),
            max_round_retries: 1,
            ..dist_cfg(SHARDS)
        };
        let fleet = FleetSpec::clean(2)
            .with_chaos(0, ChaosProxy::delay_at(1, Duration::from_millis(600)))
            .transport(transport);
        let out = run_fleet(seed, fleet, dcfg, "delay").expect("delay fleet");
        assert_bit_identical(&clean, &out, &format!("delay {transport:?}"));
        assert!(out.metrics.rounds_retried >= 1, "deadline never blew: {:?}", out.metrics);
        assert!(out.metrics.shards_reassigned >= 1, "wedged shard never fenced");
    }
}

/// Degraded completion: the whole fleet dies and the campaign still
/// finishes, with every missing `(shard, round)` written off as lost
/// and its samples synthesised in place — same rows, same order, same
/// probes as the clean store, loss attributed rather than absent.
#[test]
fn degraded_mode_attributes_lost_rounds_in_place() {
    let seed = 17;
    let clean = clean_baseline(seed);
    for transport in TRANSPORTS {
        let fleet = FleetSpec::clean(1)
            .with_chaos(0, ChaosProxy::kill_at(1))
            .transport(transport);
        let out = run_fleet(seed, fleet, dist_cfg(SHARDS).degraded(), "degraded")
            .expect("degraded completion");

        // One shard delivered one round before the fleet died.
        assert_eq!(
            out.metrics.lost_rounds,
            u64::from(SHARDS * ROUNDS - 1),
            "exactly the undelivered shard-rounds are lost over {transport:?}: {:?}",
            out.metrics
        );
        let clean_rows = clean.store.samples();
        let rows = out.store.samples();
        assert_eq!(clean_rows.len(), rows.len(), "lost rounds must not drop rows");
        let mut delivered = 0usize;
        for (i, (c, d)) in clean_rows.iter().zip(&rows).enumerate() {
            assert_eq!((c.probe, c.region, c.at), (d.probe, d.region, d.at), "row {i} misaligned");
            if d.sent > 0 {
                assert_eq!(c, d, "delivered row {i} diverges");
                delivered += 1;
            } else {
                assert!(d.min_ms.is_infinite() && d.received == 0, "row {i} not marked lost");
            }
        }
        assert!(delivered > 0, "the delivered round must survive verbatim");
        assert!(
            out.ledger.spent() < clean.ledger.spent(),
            "lost rounds must not be charged"
        );
        assert_eq!(out.ledger.balance() + out.ledger.spent(), CREDITS);
    }
}

/// Strict mode: the same fleet death aborts the campaign with a typed
/// error naming the stalled round, instead of completing degraded.
#[test]
fn strict_mode_aborts_when_the_fleet_dies() {
    for transport in TRANSPORTS {
        let fleet = FleetSpec::clean(1)
            .with_chaos(0, ChaosProxy::kill_at(1))
            .transport(transport);
        let err = run_fleet(17, fleet, dist_cfg(SHARDS), "strict")
            .expect_err("strict mode must refuse to complete");
        match err {
            DistError::Stalled { round, missing } => {
                assert_eq!(round, 0, "the merge was still waiting on round 0");
                assert!(!missing.is_empty(), "the stalled shards must be named");
            }
            other => panic!("expected Stalled over {transport:?}, got {other}"),
        }
    }
}

/// Focused restart-resume: kill a lone worker after it journals a
/// round it never submitted; its successor must deliver that round
/// from the WAL and the campaign must not lose (or duplicate) a thing.
#[test]
fn a_restarted_worker_resends_its_journaled_unsubmitted_round() {
    let seed = 19;
    let clean = clean_baseline(seed);
    for transport in TRANSPORTS {
        let root = tmp_wal_root("resume");
        let fleet = FleetSpec::clean(1)
            .with_chaos(0, ChaosProxy::kill_after_journal_at(2))
            .restart_killed()
            .transport(transport);
        let out = run_distributed(&tiny_cfg(seed), campaign_cfg(seed), dist_cfg(2), fleet, &root)
            .expect("restart-resume");
        assert_bit_identical(&clean, &out, &format!("restart-resume {transport:?}"));
        assert_eq!(out.metrics.workers_registered, 2, "one restart expected");
        assert!(
            root.join("worker-0").join("shard-0.wal").exists(),
            "the worker's WAL must survive the crash"
        );
        // The crashed incarnation journaled round 2 but never sent it;
        // the successor ships it from the WAL — so every shard-round
        // still goes out exactly once, none recomputed, none lost.
        assert_eq!(
            out.worker_stats.frames_sent,
            u64::from(2 * ROUNDS),
            "journaled round sent exactly once over {transport:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Regression (ISSUE 10 satellite): a slow round used to starve
/// heartbeats into a false fence, because the worker heartbeated
/// through the same blocking session it measured with. Heartbeats now
/// come from the transport layer (a piggyback-gated heartbeater
/// thread on both wires), so a round that outlives the heartbeat
/// timeout must *not* get the worker declared dead, fenced, or
/// retried — on either transport.
#[test]
fn slow_rounds_do_not_starve_heartbeats_into_a_false_fence() {
    let seed = 23;
    let clean = clean_baseline(seed);
    for transport in TRANSPORTS {
        let what = format!("slow round {transport:?}");
        // The round delay (250ms) dwarfs the heartbeat timeout (80ms):
        // only transport-level heartbeats keep the worker alive.
        let dcfg = DistConfig {
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(80),
            round_timeout: Duration::from_millis(2_000),
            ..dist_cfg(SHARDS)
        };
        let fleet = FleetSpec::clean(1)
            .with_chaos(0, ChaosProxy::delay_at(1, Duration::from_millis(250)))
            .transport(transport);
        let out = run_fleet(seed, fleet, dcfg, "slowround").expect(&what);
        assert_bit_identical(&clean, &out, &what);
        assert_eq!(
            out.metrics.heartbeats_missed, 0,
            "{what}: the slow worker went silent mid-round"
        );
        assert_eq!(out.metrics.shards_reassigned, 0, "{what}: false fence");
        assert_eq!(out.metrics.rounds_retried, 0, "{what}: false deadline blow");
        assert_eq!(out.metrics.workers_registered, 1, "{what}: phantom incarnation");
    }
}

/// The pipelining win, visible without a stopwatch: the same campaign
/// costs the streamed transport a fraction of the blocking
/// coordinator waits the HTTP shim pays (HTTP blocks once per
/// request — every frame a round trip — where the stream blocks once
/// per stall: the handshake, each poll answer, and one end-of-shard
/// drain). The quantitative ≥4×-per-shard pin at window=8 with
/// injected RTT lives in the `dist_scaling` bench; this is the
/// structural version on a real fleet.
#[test]
fn pipelined_streaming_pays_fewer_blocking_waits_than_http() {
    let seed = 29;
    let cfg = CampaignConfig {
        rounds: 8, // one full default window per shard
        targets_per_probe: 1,
        adjacent_targets: 1,
        seed,
        credits: CREDITS,
        ..CampaignConfig::quick()
    };
    let mut waits = Vec::new();
    let mut stores = Vec::new();
    for transport in TRANSPORTS {
        let root = tmp_wal_root("pipeline");
        let fleet = FleetSpec::clean(1).transport(transport);
        let out = run_distributed(&tiny_cfg(seed), cfg, dist_cfg(2), fleet, &root)
            .expect("pipelining fleet");
        let _ = std::fs::remove_dir_all(&root);
        assert_eq!(
            out.worker_stats.frames_sent, 16,
            "both transports ship the same 2 shards x 8 rounds"
        );
        waits.push(out.worker_stats.blocking_waits);
        stores.push(out.store);
    }
    let (http, tcp) = (waits[0], waits[1]);
    assert_eq!(stores[0].samples(), stores[1].samples(), "pipelining changed the bytes");
    // HTTP: register + polls + 16 blocking verdict waits. TCP: connect
    // + polls + at most one drain per shard. Same campaign, ≥3x fewer
    // stalls end-to-end (the per-shard ratio is 8x).
    assert!(
        tcp.saturating_mul(3) <= http,
        "pipelining should shed blocking waits: http={http} tcp={tcp}"
    );
    assert!(http >= 16, "HTTP must pay at least one blocking wait per frame, got {http}");
}
