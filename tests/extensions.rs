//! Integration tests for the extension experiments: the studies must
//! compose (same platform, same pipeline) and their findings must be
//! mutually consistent.

use latency_shears::analysis::coverage::population_coverage;
use latency_shears::analysis::distribution::all_samples_cdfs;
use latency_shears::analysis::resilience::{corridor_cut, failure_study};
use latency_shears::analysis::whatif::fiveg_whatif;
use latency_shears::apps::catalog::driving_applications;
use latency_shears::atlas::MeasurementType;
use latency_shears::prelude::*;

fn platform_with(catalog_year: Option<u16>, probes: usize) -> Platform {
    Platform::build(&PlatformConfig {
        fleet: FleetConfig {
            target_size: probes,
            seed: 4242,
        },
        catalog_year,
        ..PlatformConfig::default()
    })
}

fn run(platform: &Platform, kind: MeasurementType) -> ResultStore {
    Campaign::new(
        platform,
        CampaignConfig {
            rounds: 5,
            targets_per_probe: 3,
            adjacent_targets: 2,
            kind,
            ..CampaignConfig::quick()
        },
    )
    .run_parallel(4)
    .expect("unlimited credits")
}

#[test]
fn tcp_campaign_flows_through_the_same_analysis_pipeline() {
    let platform = platform_with(None, 350);
    let ping = run(&platform, MeasurementType::Ping);
    let tcp = run(&platform, MeasurementType::TcpConnect);
    let ping_cdfs = all_samples_cdfs(&CampaignData::new(&platform, &ping));
    let tcp_cdfs = all_samples_cdfs(&CampaignData::new(&platform, &tcp));
    for c in Continent::ALL {
        let (Some(p), Some(t)) = (ping_cdfs.continent(c), tcp_cdfs.continent(c)) else {
            continue;
        };
        let (Some(pm), Some(tm)) = (p.median(), t.median()) else {
            continue;
        };
        // TCP connect (single attempt) sits at or above ping min-of-3,
        // but within 1.5× on every continent: same network underneath.
        assert!(tm >= pm * 0.85, "{c}: tcp {tm} far below ping {pm}");
        assert!(tm <= pm * 1.5, "{c}: tcp {tm} implausibly above ping {pm}");
    }
}

#[test]
fn cloud_expansion_improves_population_coverage() {
    // Cross-experiment consistency: the 2010 catalogue must cover
    // *less* population at gaming-grade latency than the 2020 one —
    // EXT3 and TEXT4 telling the same story.
    let apps = driving_applications();
    let coverage_of = |year: Option<u16>| {
        let platform = platform_with(year, 350);
        let store = run(&platform, MeasurementType::Ping);
        let data = CampaignData::new(&platform, &store);
        let report = population_coverage(&data, &apps);
        report
            .application("Cloud gaming")
            .map(|r| r.population_covered)
            .unwrap_or(0.0)
    };
    let old = coverage_of(Some(2010));
    let new = coverage_of(None);
    assert!(
        new > old + 0.1,
        "2020 gaming coverage {new} should clearly beat 2010 {old}"
    );
}

#[test]
fn corridor_cuts_do_not_affect_the_whatif_study() {
    // The 5G what-if is a last-mile study; a backbone corridor cut must
    // leave its access-side conclusions untouched (the study computes
    // floors on the healthy topology — this is a consistency check that
    // the two studies use independent machinery without interference).
    let platform = platform_with(None, 300);
    let before = fiveg_whatif(&platform, 150);
    let cut = corridor_cut(
        &platform,
        Continent::Europe,
        Continent::NorthAmerica,
        "transatlantic",
    );
    let report = failure_study(&platform, &cut, 50, Some(Continent::NorthAmerica));
    assert!(report.links_cut > 0);
    let after = fiveg_whatif(&platform, 150);
    for (a, b) in before.rows.iter().zip(&after.rows) {
        assert_eq!(a.probes, b.probes);
        assert!((a.cloud_mtp - b.cloud_mtp).abs() < 1e-12);
    }
}

#[test]
fn snapshot_platforms_preserve_analysis_invariants() {
    // Even on the tiny 2009 cloud (nine regions across all providers:
    // three AWS, one Google, five early Linode sites), every analysis
    // stage stays total: no panics, sane outputs.
    let platform = platform_with(Some(2009), 250);
    assert_eq!(platform.catalog().regions().len(), 9);
    let store = run(&platform, MeasurementType::Ping);
    let data = CampaignData::new(&platform, &store);
    let cdfs = all_samples_cdfs(&data);
    // Continents with no reachable targets simply have empty CDFs.
    let populated = Continent::ALL
        .iter()
        .filter(|&&c| cdfs.continent(c).is_some_and(|e| !e.is_empty()))
        .count();
    assert!(populated >= 3, "2009: only {populated} continents populated");
    let report = population_coverage(&data, &driving_applications());
    assert!(report.population_measured_m > 1000.0);
}
