#!/usr/bin/env bash
# Perf trajectory: run the campaign-path and analysis benches, then fold
# the Criterion estimates into BENCH_campaign.json so successive PRs can
# compare against this one's numbers.
#
# Usage: scripts/bench.sh [extra cargo-bench filter args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> criterion: routing / route_table / ping / campaign / journal / analysis"
cargo bench -p shears-bench --bench routing -- "$@"
cargo bench -p shears-bench --bench route_table -- "$@"
cargo bench -p shears-bench --bench ping_sampling -- "$@"
cargo bench -p shears-bench --bench campaign_round -- "$@"
cargo bench -p shears-bench --bench faulty_campaign -- "$@"
cargo bench -p shears-bench --bench campaign_journal -- "$@"
cargo bench -p shears-bench --bench analysis_pipeline -- "$@"

echo "==> summarising target/criterion -> BENCH_campaign.json"
cargo run --release -p shears-bench --bin bench_summary -- \
    target/criterion BENCH_campaign.json

echo "bench: OK (see BENCH_campaign.json)"
