#!/usr/bin/env bash
# Perf trajectory: run the campaign-path and analysis benches, then fold
# the Criterion estimates into BENCH_campaign.json so successive PRs can
# compare against this one's numbers. The API serving-path benches
# (round-trip latency + the mixed-read load generator at 1/2/4/8 client
# threads) are folded separately into BENCH_api.json.
#
# The incremental-frame benches (append throughput + stats-latency
# while a campaign is still landing, vs full rebuilds) are folded into
# BENCH_frame.json, and the column-kernel benches (scalar vs chunked
# vs simd scans, bucketed percentile vs full sort, grouped minima)
# into BENCH_kernels.json. The distributed-execution scaling harness
# (coordinator + 1/2/4/8 worker fleets over the real wire, plus the
# kill-one-worker reassignment-recovery legs) folds into
# BENCH_dist.json.
#
# Usage: scripts/bench.sh [extra cargo-bench filter args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> criterion: routing / route_table / ping / campaign / journal / analysis"
cargo bench -p shears-bench --bench routing -- "$@"
cargo bench -p shears-bench --bench route_table -- "$@"
cargo bench -p shears-bench --bench ping_sampling -- "$@"
cargo bench -p shears-bench --bench campaign_round -- "$@"
cargo bench -p shears-bench --bench faulty_campaign -- "$@"
cargo bench -p shears-bench --bench campaign_journal -- "$@"
cargo bench -p shears-bench --bench analysis_pipeline -- "$@"

echo "==> summarising target/criterion -> BENCH_campaign.json"
cargo run --release -p shears-bench --bin bench_summary -- \
    target/criterion BENCH_campaign.json

echo "==> criterion: incremental frame (append vs rebuild)"
cargo bench -p shears-bench --bench frame_incremental -- "$@"

echo "==> summarising frame_incremental -> BENCH_frame.json"
cargo run --release -p shears-bench --bin bench_summary -- \
    target/criterion/frame_incremental BENCH_frame.json

echo "==> criterion: column kernels (scalar vs chunked scans)"
cargo bench -p shears-bench --bench kernel_scan -- "$@"

echo "==> summarising kernel groups -> BENCH_kernels.json"
cargo run --release -p shears-bench --bin bench_summary -- \
    target/criterion/kernel_scan BENCH_kernels.json

echo "==> criterion: api round-trip + load generation"
cargo bench -p shears-bench --bench api_roundtrip -- "$@"
cargo bench -p shears-bench --bench api_load -- "$@"

echo "==> summarising api groups -> BENCH_api.json"
cargo run --release -p shears-bench --bin bench_summary -- \
    target/criterion/api_load BENCH_api.json

# Open-loop load harness: Poisson arrivals at 3 rates × {64, 1k, 10k}
# keep-alive sessions against the readiness-driven reactor, folding
# p50/p99/p999 + throughput under a "loadgen" key in BENCH_api.json
# (after bench_summary, which rewrites the file fresh). The 10k-session
# legs need ~20k fds in one process (client + server ends both live
# here); raise the soft limit when the hard limit admits it.
echo "==> open-loop loadgen grid -> BENCH_api.json"
ulimit -Sn 30000 2>/dev/null || \
    echo "    (could not raise fd limit; 10k-session legs may degrade)"
cargo run --release -p shears-bench --bin loadgen -- \
    --grid --secs 5 --merge BENCH_api.json

# Distributed scaling: clean 1/2/4/8-worker fleets (shard-rounds/sec)
# plus kill-one-worker recovery legs at 2 and 4 workers, all over the
# real work protocol with worker WALs on disk.
echo "==> distributed scaling grid -> BENCH_dist.json"
cargo run --release -p shears-bench --bin dist_scaling -- \
    --merge BENCH_dist.json

echo "bench: OK (see BENCH_campaign.json, BENCH_frame.json, BENCH_api.json, BENCH_dist.json)"
