#!/usr/bin/env bash
# Repo verification: build, tier-1 tests, and lint-as-error.
#
# Usage: scripts/verify.sh [profile]
#   (default) — full build + tests + clippy + bench compile check
#   chaos     — only the fault-injection determinism suite: the
#               seed-matrix chaos grid plus the passthrough-equivalence
#               pin (fast enough to run on every fault-model change)
#   crash     — only the durability suite: the kill-at-any-round
#               recovery sweeps (10 seeds × 3 kill rounds × 3 thread
#               counts × 2 fault profiles), byte-level damage rejection,
#               and the journal/campaign durability unit tests
#   api       — only the API serving path: the concurrent reader/writer
#               stress test over real TCP, the api crate's unit tests
#               (sharded state, stats-cache epochs, worker pool), and
#               the HTTP integration suite
#   frame     — only the columnar-store / incremental-frame suite: the
#               store's row/column accessor equivalence, the frame's
#               append-vs-rebuild bit-equality grid (1/2/8 threads,
#               clean + chaos campaigns), the figure-pipeline golden
#               equivalence, and the API's extend⇒append counter pins
#   reactor   — only the connection-level adversarial battery against
#               the readiness-driven event loop: slowloris vs fast
#               sessions, split-at-every-byte pipelined parsing,
#               mid-response disconnects, 503 shed + drain recovery
#               (each at 1/2/8 reactor threads), the idle soak's
#               thread-count pin (SHEARS_SOAK_SESSIONS=10000 where
#               `ulimit -n` admits ≥20k fds), reactor-vs-worker-pool
#               byte equality, the server/reactor unit tests, and the
#               parser chunk-partition property tests
#   dist      — only the distributed-execution suite: the recovery
#               harness (clean 1/2/4/8-worker bit-identity, the
#               kill grid — 5 seeds × kill round {0,1,2} × {2,4}
#               workers × {reassign, restart-resume} — hang/delay
#               chaos, degraded vs strict completion), the dist
#               crate's unit tests, and the work-queue unit tests
#               (assignment, heartbeats, fencing, frame dedup)
#   transport — only the work-plane transport suite: the stream-framing
#               property tests (chunk-partition independence, arbitrary
#               bytes and bit flips never panic or merge), the api
#               crate's transport + work-queue unit tests, the dist
#               crate's unit tests, and the full recovery grid — which
#               runs every sweep over both the HTTP and the streamed
#               TCP work planes and pins the merges bit-identical
#   kernels   — only the column-kernel suite: the scalar/chunked/simd
#               bit-equality property tests, the stats pins (two-pointer
#               KS, selection bootstrap, Summary-over-Ecdf), and the
#               20-seed chaos-campaign kernel grid. Runs once without
#               features and — when the toolchain admits `std::simd`
#               (nightly, or RUSTC_BOOTSTRAP=1) — again with
#               `--features simd` so both dispatch arms are proven.
#
# Requires a working cargo registry (the workspace has path-only internal
# deps but external ones — serde, crossbeam, … — must be resolvable).
# In an offline container without a pre-populated registry cache, cargo
# cannot resolve the workspace at all; run this where crates.io (or a
# mirror) is reachable.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-full}"

if [ "$profile" = "chaos" ]; then
    echo "==> chaos profile: seed-matrix fault determinism"
    cargo test --release --test determinism chaos
    cargo test --release --test determinism passthrough
    cargo test --release -p shears-atlas campaign::tests::chaos
    echo "verify (chaos): OK"
    exit 0
fi

if [ "$profile" = "crash" ]; then
    echo "==> crash profile: kill-at-any-round durability sweep"
    cargo test --release --test crash_recovery
    cargo test --release -p shears-atlas journal::
    cargo test --release -p shears-atlas campaign::tests::durable
    cargo test --release -p shears-atlas campaign::tests::crash
    cargo test --release -p shears-atlas campaign::tests::resume
    cargo test --release -p shears-atlas campaign::tests::checkpoint
    echo "verify (crash): OK"
    exit 0
fi

if [ "$profile" = "api" ]; then
    echo "==> api profile: concurrent serving-path consistency"
    cargo test --release --test api_concurrency
    cargo test --release -p shears-api
    cargo test --release --test api_integration
    echo "verify (api): OK"
    exit 0
fi

if [ "$profile" = "frame" ]; then
    echo "==> frame profile: columnar store + incremental frame equivalence"
    cargo test --release -p shears-atlas store::
    cargo test --release -p shears-analysis frame::
    cargo test --release --test determinism columnar_store_accessors
    cargo test --release --test determinism incremental_frame_append
    cargo test --release --test determinism frame_indexes_reproduce
    cargo test --release -p shears-api service::tests::n_appended_rounds
    cargo test --release -p shears-api service::tests::divergent_durable_copy
    cargo test --release -p shears-api service::tests::stats_cache_invalidates
    echo "verify (frame): OK"
    exit 0
fi

if [ "$profile" = "reactor" ]; then
    echo "==> reactor profile: adversarial connection-level battery"
    cargo test --release --test api_reactor
    cargo test --release -p shears-api server::
    cargo test --release -p shears-api http::
    cargo test --release --test api_concurrency
    cargo test --release --test proptests parser_
    echo "verify (reactor): OK"
    exit 0
fi

if [ "$profile" = "dist" ]; then
    echo "==> dist profile: fault-tolerant distributed execution"
    cargo test --release --test dist_recovery
    cargo test --release -p shears-dist
    cargo test --release -p shears-api work::
    echo "verify (dist): OK"
    exit 0
fi

if [ "$profile" = "transport" ]; then
    echo "==> transport profile: pipelined work-plane stream"
    cargo test --release --test proptests stream_
    cargo test --release -p shears-api transport::
    cargo test --release -p shears-api work::
    cargo test --release -p shears-dist
    cargo test --release --test dist_recovery
    echo "verify (transport): OK"
    exit 0
fi

if [ "$profile" = "kernels" ]; then
    run_kernel_suite() {
        cargo test --release "$@" -p shears-analysis kernels::
        cargo test --release "$@" -p shears-analysis stats::
        cargo test --release "$@" -p shears-atlas store::
        cargo test --release "$@" --test determinism kernel_variants
    }
    echo "==> kernels profile: scan-variant bit-equality (default dispatch)"
    run_kernel_suite
    # The simd leg needs the portable_simd feature gate; run it when the
    # compiler will accept it (nightly, or stable with RUSTC_BOOTSTRAP).
    if [ -n "${RUSTC_BOOTSTRAP:-}" ] || rustc --version | grep -q nightly; then
        echo "==> kernels profile: simd feature leg"
        run_kernel_suite --features simd
    else
        echo "==> kernels profile: skipping simd leg (stable toolchain;"
        echo "    set RUSTC_BOOTSTRAP=1 or use nightly to run it)"
    fi
    echo "verify (kernels): OK"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench code must keep compiling)"
cargo bench --no-run --workspace

echo "verify: OK"
