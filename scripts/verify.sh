#!/usr/bin/env bash
# Repo verification: build, tier-1 tests, and lint-as-error.
#
# Requires a working cargo registry (the workspace has path-only internal
# deps but external ones — serde, crossbeam, … — must be resolvable).
# In an offline container without a pre-populated registry cache, cargo
# cannot resolve the workspace at all; run this where crates.io (or a
# mirror) is reachable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench code must keep compiling)"
cargo bench --no-run --workspace

echo "verify: OK"
